// Package poly implements MikPoly's online stage S2 (§3.4, Algorithm 1
// lines 7–14): micro-kernel polymerization. Once a GEMM's shape (M, N, K) is
// known at runtime, the planner reorganizes the online loops of the
// two-stage program template into candidate programs using the predefined
// polymerization patterns of Fig. 5, instantiates their parameterized
// micro-kernels from the offline library, estimates each candidate with the
// lightweight cost model Cost(S,H) = Σ f_wave × f_pipe (Eq. 2), and returns
// the cheapest program.
package poly

import (
	"fmt"
	"slices"

	"mikpoly/internal/hw"
	"mikpoly/internal/kernel"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
)

// Region is one loop nest R_i of a polymerized program: a box of the
// M×N×K iteration space computed with a single micro-kernel. The paper's
// patterns split only the output plane (KOff = 0, K = shape K); the split-K
// extension also slices the reduction dimension, with partial products
// accumulated into the shared output. Extents need not be multiples of the
// kernel tile — local padding (§3.4) rounds the iteration space up, so any
// shape is legal.
type Region struct {
	// M0, N0 locate the block in the output matrix.
	M0, N0 int
	// M, N are the block extents (unpadded).
	M, N int
	// KOff is the reduction-slice start (0 for output-plane patterns).
	KOff int
	// K is the reduction-slice extent.
	K int
	// Kern is the micro-kernel K̃_i instantiated for this region.
	Kern kernel.MicroKernel

	// Chain, when non-empty, makes this a fused multi-stage region: the
	// listed GEMM stages run before the final stage described by the
	// region's own geometry, strip by strip, with intermediates resident
	// in M_local (see chain.go). Empty for every single-op program, so
	// plan-cache snapshots of those serialize exactly as before.
	Chain []FusedStage `json:",omitempty"`
}

// Tiles returns (t1, t2, t3): the tile counts in the M, N and K dimensions
// after local padding.
func (r Region) Tiles() (t1, t2, t3 int) {
	t1 = (r.M + r.Kern.UM - 1) / r.Kern.UM
	t2 = (r.N + r.Kern.UN - 1) / r.Kern.UN
	t3 = (r.K + r.Kern.UK - 1) / r.Kern.UK
	return t1, t2, t3
}

// Tasks returns f_parallel(R_i, K̃_i): the number of pipelined tasks the
// region launches (one per output tile; the reduction loop runs inside a
// task). A fused region launches one task per row strip instead — the whole
// chain of a strip must run on one PE to keep its intermediates in M_local.
func (r Region) Tasks() int {
	t1, t2, _ := r.Tiles()
	if r.Fused() {
		return t1
	}
	return t1 * t2
}

// Empty reports whether the region covers no output.
func (r Region) Empty() bool { return r.M <= 0 || r.N <= 0 }

// Validate checks internal consistency against a program shape.
func (r Region) Validate(shape tensor.GemmShape) error {
	switch {
	case r.Empty():
		return fmt.Errorf("poly: empty region %+v", r)
	case r.M0 < 0 || r.N0 < 0 || r.M0+r.M > shape.M || r.N0+r.N > shape.N:
		return fmt.Errorf("poly: region %+v outside output %v", r, shape)
	case r.KOff < 0 || r.K <= 0 || r.KOff+r.K > shape.K:
		return fmt.Errorf("poly: region reduction slice [%d,%d) outside K=%d", r.KOff, r.KOff+r.K, shape.K)
	case r.Kern.UM <= 0 || r.Kern.UN <= 0 || r.Kern.UK <= 0:
		return fmt.Errorf("poly: region %+v has malformed kernel", r)
	}
	if r.Fused() {
		return r.validateChain(shape)
	}
	return nil
}

// Program is a polymerized tensor program S for one runtime shape: a list of
// regions that exactly tile the output space.
type Program struct {
	Shape   tensor.GemmShape
	Pattern PatternID
	Regions []Region

	// EstimatedCost is the planner's cost-model value (cycles); zero for
	// hand-built programs.
	EstimatedCost float64

	// HW is the hardware abstraction the program was planned against —
	// the pristine H, or a degraded H' with quarantined PEs removed and
	// bandwidth derated. Execution layers simulate the program on this
	// abstraction, not the pristine device, so a degraded-mode plan runs
	// on the hardware it was priced for. Zero (NumPEs == 0) for
	// hand-built programs; callers fall back to their own device then.
	HW hw.Hardware
}

// Validate checks that the regions are well-formed and exactly partition the
// M×N×K iteration space (no gaps, no overlaps) — the invariant that makes
// polymerized execution, including split-K partial accumulation, correct for
// any shape.
func (p *Program) Validate() error {
	if !p.Shape.Valid() {
		return fmt.Errorf("poly: invalid shape %v", p.Shape)
	}
	if len(p.Regions) == 0 {
		return fmt.Errorf("poly: program for %v has no regions", p.Shape)
	}
	var volume int64
	for i, r := range p.Regions {
		if err := r.Validate(p.Shape); err != nil {
			return fmt.Errorf("region %d: %w", i, err)
		}
		if r.Fused() != (p.Pattern == PatternChain) {
			return fmt.Errorf("poly: region %d fused=%v under pattern %s", i, r.Fused(), p.Pattern)
		}
		if r.Fused() && !slices.Equal(r.Chain, p.Regions[0].Chain) {
			return fmt.Errorf("poly: region %d chain differs from region 0", i)
		}
		volume += int64(r.M) * int64(r.N) * int64(r.K)
		for j := 0; j < i; j++ {
			o := p.Regions[j]
			if r.M0 < o.M0+o.M && o.M0 < r.M0+r.M &&
				r.N0 < o.N0+o.N && o.N0 < r.N0+r.N &&
				r.KOff < o.KOff+o.K && o.KOff < r.KOff+r.K {
				return fmt.Errorf("poly: regions %d and %d overlap", j, i)
			}
		}
	}
	want := int64(p.Shape.M) * int64(p.Shape.N) * int64(p.Shape.K)
	if volume != want {
		return fmt.Errorf("poly: regions cover %d iteration-space elements, want %d", volume, want)
	}
	return nil
}

// NumTasks is the total pipelined-task count across regions.
func (p *Program) NumTasks() int {
	n := 0
	for _, r := range p.Regions {
		n += r.Tasks()
	}
	return n
}

// Tasks lowers the program to simulator tasks, region by region in launch
// order (the GPU's dynamic scheduler may overlap the tail of one region with
// the head of the next, exactly the behaviour that shrinks partial waves).
// Fused regions lower to one strip task per row band, whose traffic already
// excludes the inter-stage loads and stores the chain keeps in M_local.
func (p *Program) Tasks(h hw.Hardware) []sim.Task {
	out := make([]sim.Task, 0, p.NumTasks())
	for ri, r := range p.Regions {
		var task sim.Task
		if r.Fused() {
			task = r.chainTask(h)
		} else {
			_, _, t3 := r.Tiles()
			task = r.Kern.PipelinedTask(h, t3)
		}
		task.Tag = ri
		for i := 0; i < r.Tasks(); i++ {
			out = append(out, task)
		}
	}
	return out
}

// Simulate executes the program on the simulator substrate and returns the
// measured makespan and utilization — the reproduction's stand-in for a
// hardware run.
func (p *Program) Simulate(h hw.Hardware) sim.Result {
	return sim.Run(h, p.Tasks(h))
}

// String summarizes the program. Single-op programs format exactly as they
// always have — this string is the plan-cache / benchmark fingerprint — and
// fused regions append their stage chain inside the region bracket.
func (p *Program) String() string {
	s := fmt.Sprintf("program %v pattern %s:", p.Shape, p.Pattern)
	for _, r := range p.Regions {
		if r.Fused() {
			chain := ""
			for i, st := range r.Chain {
				if i > 0 {
					chain += ">"
				}
				chain += fmt.Sprintf("%dx%d", st.N, st.K)
				if st.Epilogue != EpNone {
					chain += "+" + st.Epilogue.String()
				}
			}
			s += fmt.Sprintf(" [%d+%dx%d+%d %v chain(%s)]", r.M0, r.M, r.N0, r.N, r.Kern, chain)
		} else {
			s += fmt.Sprintf(" [%d+%dx%d+%d %v]", r.M0, r.M, r.N0, r.N, r.Kern)
		}
	}
	return s
}
