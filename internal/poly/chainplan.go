package poly

import (
	"context"
	"fmt"
	"time"

	"mikpoly/internal/sim"
)

// ChainPlanStats reports what the fused-chain search did.
type ChainPlanStats struct {
	// Candidates is the number of fully costed fused candidates.
	Candidates int
	// PrunedAnchors counts anchor kernels rejected by the hardware bound
	// (M_local cannot hold the chain's intermediate strips) before any
	// costing — the strategy-hierarchization prune that keeps the larger
	// fused search space as cheap as the single-op search.
	PrunedAnchors int
	// Elapsed is the wall-clock planning time.
	Elapsed time.Duration
}

// PlanChain plans a fused multi-stage program for a GEMM chain. See
// PlanChainContext.
func (p *Planner) PlanChain(spec ChainSpec) (*Program, ChainPlanStats, error) {
	return p.PlanChainContext(context.Background(), spec)
}

// PlanChainContext enumerates and costs fused candidates for the chain:
// every library kernel that passes the hardware scratch bound anchors one
// full-band candidate (all row strips under one kernel), plus — when the
// shared M is ragged under the anchor — two-band candidates that serve the
// remainder strip with a differently sized kernel. Costing follows Eq. 2
// with the strip task priced exactly as the simulator would run it
// (sim.PipelinedTaskCycles at the fair-share bandwidth, the same scale
// g_predict is fitted against), and only the winning candidate is
// materialized, using the same pooled scratch as the single-op search.
//
// The chain never slices the reduction dimension: split-K partials are not
// final values, so a nonlinear inter-stage epilogue cannot be applied to
// them (see engine/epilogue.go).
func (p *Planner) PlanChainContext(ctx context.Context, spec ChainSpec) (*Program, ChainPlanStats, error) {
	start := time.Now()
	var stats ChainPlanStats
	if err := spec.Validate(); err != nil {
		return nil, stats, err
	}
	if p.Lib == nil || len(p.Lib.Kernels) == 0 {
		return nil, stats, fmt.Errorf("poly: empty micro-kernel library")
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, fmt.Errorf("poly: planning aborted: %w", err)
	}
	_, sp := p.Trace.Start(ctx, "poly.planchain")
	defer func() {
		sp.Attr("stages", float64(len(spec.Stages))).
			Attr("candidates", float64(stats.Candidates)).
			Attr("pruned", float64(stats.PrunedAnchors)).End()
	}()

	h := p.Lib.HW
	shape := spec.Shape()
	prefix := spec.prefix()
	maxW := spec.maxWidth()
	pes := h.NumPEs
	bw := h.FairShareBandwidth()

	sc := getScratch()
	defer putScratch(sc)
	strips := sc.chainStrips(len(p.Lib.Kernels))
	// stripCycles lazily prices one row strip of the whole chain under
	// kernel i, memoized per plan; admissible() applies the hardware bound.
	tmpl := Region{N: shape.N, K: shape.K, Chain: prefix}
	admissible := func(i int) bool {
		k := p.Lib.Kernels[i]
		return k.Feasible(h) && ChainScratchBytes(k, maxW, h) <= h.LocalMemBytes
	}
	stripCycles := func(i int) float64 {
		s := &strips[i]
		if !s.done {
			r := tmpl
			r.Kern = p.Lib.Kernels[i]
			s.cycles = sim.PipelinedTaskCycles(r.chainTask(h), bw)
			s.done = true
		}
		return s.cycles
	}
	bandCost := func(t1 int, kernelIdx int) float64 {
		waves := WaveCount(t1, pes)
		switch p.Cost {
		case CostWaveOnly:
			return waves
		case CostPipeOnly:
			return stripCycles(kernelIdx)
		default:
			return waves * stripCycles(kernelIdx)
		}
	}

	// win.anchorIdx is the main-band kernel; candIdx is the tail-band
	// kernel index, or -1 for the single full-band candidate.
	var win winner
	for ai := range p.Lib.Kernels {
		if err := ctx.Err(); err != nil {
			return nil, stats, fmt.Errorf("poly: planning aborted: %w", err)
		}
		if !admissible(ai) {
			stats.PrunedAnchors++
			continue
		}
		a := p.Lib.Kernels[ai]
		t1 := (shape.M + a.UM - 1) / a.UM
		cost := bandCost(t1, ai)
		stats.Candidates++
		if !win.valid || cost < win.cost {
			win = winner{valid: true, cost: cost, pat: PatternChain, anchorIdx: ai, candIdx: -1}
		}

		// Ragged M: try serving the remainder strip with a smaller kernel
		// (the Pattern II move, applied to the fused band partition).
		mA := shape.M / a.UM * a.UM
		rem := shape.M - mA
		if rem == 0 || mA == 0 {
			continue
		}
		mainCost := bandCost(mA/a.UM, ai)
		for ti := range p.Lib.Kernels {
			if ti == ai || !admissible(ti) {
				continue
			}
			t := p.Lib.Kernels[ti]
			cost := mainCost + bandCost((rem+t.UM-1)/t.UM, ti)
			stats.Candidates++
			if !win.valid || cost < win.cost {
				win = winner{valid: true, cost: cost, pat: PatternChain, anchorIdx: ai, candIdx: ti}
			}
		}
	}
	if !win.valid {
		return nil, stats, fmt.Errorf("poly: no fused candidate fits %s on %s (all %d anchors pruned)",
			spec, h.Name, stats.PrunedAnchors)
	}

	prog := &Program{
		Shape:         shape,
		Pattern:       PatternChain,
		EstimatedCost: win.cost,
		HW:            h,
	}
	anchor := p.Lib.Kernels[win.anchorIdx]
	if win.candIdx < 0 {
		prog.Regions = []Region{{
			M: shape.M, N: shape.N, K: shape.K, Kern: anchor, Chain: prefix,
		}}
	} else {
		mA := shape.M / anchor.UM * anchor.UM
		prog.Regions = []Region{
			{M: mA, N: shape.N, K: shape.K, Kern: anchor, Chain: prefix},
			{M0: mA, M: shape.M - mA, N: shape.N, K: shape.K, Kern: p.Lib.Kernels[win.candIdx], Chain: prefix},
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, stats, fmt.Errorf("poly: planned chain program invalid: %w", err)
	}
	stats.Elapsed = time.Since(start)
	return prog, stats, nil
}
