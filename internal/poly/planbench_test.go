package poly

import (
	"testing"

	"mikpoly/internal/tensor"
)

// planBenchShapes is a small pinned sweep exercising ragged BERT-style and
// Llama-decode GEMM shapes.
var planBenchShapes = []tensor.GemmShape{
	{M: 384, N: 768, K: 768},
	{M: 1, N: 4096, K: 4096},
	{M: 100, N: 60, K: 40},
	{M: 4000, N: 1024, K: 512},
	{M: 17, N: 4096, K: 11008},
	{M: 509, N: 3072, K: 768},
}

func BenchmarkPlanGPU(b *testing.B) {
	gpu, _ := libs(b)
	p := NewPlanner(gpu)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := planBenchShapes[i%len(planBenchShapes)]
		if _, _, err := p.Plan(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanNPU(b *testing.B) {
	_, npu := libs(b)
	p := NewPlanner(npu)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := planBenchShapes[i%len(planBenchShapes)]
		if _, _, err := p.Plan(s); err != nil {
			b.Fatal(err)
		}
	}
}
