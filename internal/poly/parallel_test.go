package poly

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mikpoly/internal/tensor"
)

// determinismShapes is the pinned suite plus seeded random shapes the
// parallel-equivalence tests sweep. Run under -race in CI, this doubles as
// the planner's concurrency test.
func determinismShapes(seed int64, extra int) []tensor.GemmShape {
	shapes := []tensor.GemmShape{
		{M: 1, N: 1, K: 1},
		{M: 384, N: 768, K: 768},
		{M: 1, N: 4096, K: 4096},
		{M: 100, N: 60, K: 40},
		{M: 4000, N: 1024, K: 512},
		{M: 17, N: 4096, K: 11008},
		{M: 509, N: 3072, K: 768},
		{M: 105, N: 1024, K: 12544},
		{M: 33, N: 17, K: 129},
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < extra; i++ {
		shapes = append(shapes, tensor.GemmShape{
			M: 1 + rng.Intn(4096), N: 1 + rng.Intn(4096), K: 1 + rng.Intn(16384),
		})
	}
	return shapes
}

// samePlan asserts two programs are bitwise identical: pattern, every region
// (geometry and kernel), and the estimated cost down to the float bits.
func samePlan(t *testing.T, tag string, seq, par *Program) {
	t.Helper()
	if seq.Pattern != par.Pattern {
		t.Fatalf("%s: pattern %v != %v", tag, seq.Pattern, par.Pattern)
	}
	if !reflect.DeepEqual(seq.Regions, par.Regions) {
		t.Fatalf("%s: regions differ:\nseq: %v\npar: %v", tag, seq, par)
	}
	if math.Float64bits(seq.EstimatedCost) != math.Float64bits(par.EstimatedCost) {
		t.Fatalf("%s: cost bits %x != %x", tag, math.Float64bits(seq.EstimatedCost), math.Float64bits(par.EstimatedCost))
	}
}

// TestParallelPlanMatchesSequential is the planner-determinism gate: across
// the pinned suite, several seeds and several worker counts, the parallel
// candidate search must return the exact program — same regions, same kernel
// choices, same cost bits — the sequential search returns.
func TestParallelPlanMatchesSequential(t *testing.T) {
	gpu, npu := libs(t)
	for _, lib := range []*struct {
		name string
		p    func() *Planner
	}{
		{"gpu", func() *Planner { return NewPlanner(gpu) }},
		{"npu", func() *Planner { return NewPlanner(npu) }},
		{"npu-splitk", func() *Planner { p := NewPlanner(npu); p.EnableSplitK = true; return p }},
		{"gpu-noprune", func() *Planner { p := NewPlanner(gpu); p.DisablePruning = true; return p }},
		{"npu-wave", func() *Planner { p := NewPlanner(npu); p.Cost = CostWaveOnly; return p }},
		{"npu-pipe", func() *Planner { p := NewPlanner(npu); p.Cost = CostPipeOnly; return p }},
	} {
		for _, seed := range []int64{1, 7, 42} {
			shapes := determinismShapes(seed, 20)
			seqPlanner := lib.p()
			for _, s := range shapes {
				seqProg, _, err := seqPlanner.Plan(s)
				if err != nil {
					t.Fatalf("%s seq %v: %v", lib.name, s, err)
				}
				for _, workers := range []int{2, 3, 4, 8} {
					parPlanner := lib.p()
					parPlanner.Workers = workers
					parProg, _, err := parPlanner.Plan(s)
					if err != nil {
						t.Fatalf("%s w=%d %v: %v", lib.name, workers, s, err)
					}
					samePlan(t, lib.name, seqProg, parProg)
				}
			}
		}
	}
}

// TestParallelPlanConcurrentSameShape drives many goroutines through one
// parallel planner at once (the compiler's singleflight dedupes per shape,
// not across shapes), asserting every result matches the sequential plan.
func TestParallelPlanConcurrentSameShape(t *testing.T) {
	_, npu := libs(t)
	seq := NewPlanner(npu)
	shapes := determinismShapes(3, 6)
	want := make([]*Program, len(shapes))
	for i, s := range shapes {
		prog, _, err := seq.Plan(s)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = prog
	}
	par := NewPlanner(npu)
	par.Workers = 4
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i, s := range shapes {
				prog, _, err := par.Plan(s)
				if err != nil {
					done <- err
					return
				}
				if !reflect.DeepEqual(prog.Regions, want[i].Regions) {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errString("parallel plan diverged from sequential")

type errString string

func (e errString) Error() string { return string(e) }

// TestParallelPlanCancellation: a cancelled context aborts the parallel
// search with the context error, like the sequential path.
func TestParallelPlanCancellation(t *testing.T) {
	_, npu := libs(t)
	p := NewPlanner(npu)
	p.Workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := p.PlanContext(ctx, tensor.GemmShape{M: 1000, N: 1000, K: 1000}); err == nil {
		t.Fatal("cancelled parallel plan must fail")
	}
}

// TestPlanAllocationBudget pins the allocation count of the steady-state
// sequential hot path: after warmup (memo and pools populated), a plan may
// materialize the winning program and essentially nothing else. The pre-
// optimization planner spent 211 (GPU) / 1854 (NPU) allocs per plan; the
// budget leaves headroom over the measured 2 while still failing on any
// reintroduced per-candidate churn.
func TestPlanAllocationBudget(t *testing.T) {
	gpu, npu := libs(t)
	shapes := determinismShapes(9, 10)
	for _, tc := range []struct {
		name string
		p    *Planner
	}{
		{"gpu", NewPlanner(gpu)},
		{"npu", NewPlanner(npu)},
	} {
		for _, s := range shapes { // warm the skeleton memo
			if _, _, err := tc.p.Plan(s); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(20, func() {
			for _, s := range shapes {
				if _, _, err := tc.p.Plan(s); err != nil {
					t.Fatal(err)
				}
			}
		})
		perPlan := avg / float64(len(shapes))
		if perPlan > 8 {
			t.Fatalf("%s: %0.1f allocs per plan, budget 8", tc.name, perPlan)
		}
	}
}
