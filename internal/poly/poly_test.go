package poly

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"mikpoly/internal/hw"
	"mikpoly/internal/kernel"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

var (
	libOnce sync.Once
	gpuLib  *tune.Library
	npuLib  *tune.Library
)

func libs(t testing.TB) (*tune.Library, *tune.Library) {
	t.Helper()
	libOnce.Do(func() {
		opts := tune.Options{NGen: 12, NSyn: 12, NMik: 16, NPred: 1024}
		var err error
		if gpuLib, err = tune.Generate(hw.A100(), opts); err != nil {
			panic(err)
		}
		if npuLib, err = tune.Generate(hw.Ascend910(), opts); err != nil {
			panic(err)
		}
	})
	return gpuLib, npuLib
}

func TestRegionTilesAndTasks(t *testing.T) {
	r := Region{M: 100, N: 50, K: 70, Kern: kernel.New(32, 16, 32, kernel.DefaultConfig())}
	t1, t2, t3 := r.Tiles()
	if t1 != 4 || t2 != 4 || t3 != 3 {
		t.Fatalf("Tiles = %d,%d,%d want 4,4,3 (local padding rounds up)", t1, t2, t3)
	}
	if r.Tasks() != 16 {
		t.Fatalf("Tasks = %d, want 16", r.Tasks())
	}
}

func TestProgramValidateCoverage(t *testing.T) {
	shape := tensor.GemmShape{M: 100, N: 60, K: 40}
	k := kernel.New(16, 16, 16, kernel.DefaultConfig())
	good := &Program{
		Shape:   shape,
		Pattern: PatternII,
		Regions: []Region{
			{M0: 0, N0: 0, M: 64, N: 60, K: 40, Kern: k},
			{M0: 64, N0: 0, M: 36, N: 60, K: 40, Kern: k},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	gap := &Program{Shape: shape, Regions: []Region{{M0: 0, N0: 0, M: 64, N: 60, K: 40, Kern: k}}}
	if gap.Validate() == nil {
		t.Fatal("gap not detected")
	}

	overlap := &Program{
		Shape: shape,
		Regions: []Region{
			{M0: 0, N0: 0, M: 64, N: 60, K: 40, Kern: k},
			{M0: 60, N0: 0, M: 40, N: 60, K: 40, Kern: k},
		},
	}
	if overlap.Validate() == nil {
		t.Fatal("overlap not detected")
	}

	badK := &Program{Shape: shape, Regions: []Region{{M0: 0, N0: 0, M: 100, N: 60, K: 39, Kern: k}}}
	if badK.Validate() == nil {
		t.Fatal("wrong reduction extent not detected")
	}

	outside := &Program{Shape: shape, Regions: []Region{{M0: 10, N0: 0, M: 100, N: 60, K: 40, Kern: k}}}
	if outside.Validate() == nil {
		t.Fatal("out-of-bounds region not detected")
	}
}

func TestProgramTasks(t *testing.T) {
	shape := tensor.GemmShape{M: 64, N: 64, K: 64}
	k := kernel.New(32, 32, 32, kernel.DefaultConfig())
	prog := &Program{Shape: shape, Pattern: PatternI,
		Regions: []Region{{M: 64, N: 64, K: 64, Kern: k}}}
	h := hw.A100()
	tasks := prog.Tasks(h)
	if len(tasks) != 4 {
		t.Fatalf("task count = %d, want 4", len(tasks))
	}
	want := k.PipelinedTask(h, 2)
	for _, task := range tasks {
		if task.ComputeCycles != want.ComputeCycles || task.MemBytes != want.MemBytes {
			t.Fatal("task cost mismatch")
		}
	}
}

func TestPatternSets(t *testing.T) {
	if len(GPUPatterns()) != 2 {
		t.Fatalf("GPU patterns = %v, want I and II (§4)", GPUPatterns())
	}
	if len(NPUPatterns()) != 9 {
		t.Fatalf("NPU patterns = %d, want 9 (Fig. 5b)", len(NPUPatterns()))
	}
	if PatternI.String() != "I" || PatternIX.String() != "IX" {
		t.Fatal("pattern names wrong")
	}
	if PatternID(99).String() != "Pattern(99)" {
		t.Fatal("unknown pattern formatting wrong")
	}
}

// Every boundary candidate of every pattern must exactly tile the output.
func TestBoundaryCandidatesCoverage(t *testing.T) {
	anchors := []kernel.MicroKernel{
		kernel.New(128, 128, 32, kernel.DefaultConfig()),
		kernel.New(64, 64, 64, kernel.DefaultConfig()),
		kernel.New(16, 32, 16, kernel.DefaultConfig()),
	}
	shapes := [][2]int{{4096, 1024}, {105, 1024}, {100, 60}, {1, 1}, {16, 4096}, {3000, 17}}
	for _, pat := range NPUPatterns() {
		for _, a := range anchors {
			for _, s := range shapes {
				M, N := s[0], s[1]
				for _, geoms := range boundaryCandidates(pat, M, N, a, 108) {
					var area int64
					for i, g := range geoms {
						if g.m <= 0 || g.n <= 0 {
							t.Fatalf("pattern %s: empty rect survived", pat)
						}
						if g.m0 < 0 || g.n0 < 0 || g.m0+g.m > M || g.n0+g.n > N {
							t.Fatalf("pattern %s shape %v: rect %+v out of bounds", pat, s, g)
						}
						area += int64(g.m) * int64(g.n)
						for j := 0; j < i; j++ {
							o := geoms[j]
							if g.m0 < o.m0+o.m && o.m0 < g.m0+g.m &&
								g.n0 < o.n0+o.n && o.n0 < g.n0+g.n {
								t.Fatalf("pattern %s shape %v: rects overlap", pat, s)
							}
						}
					}
					if area != int64(M)*int64(N) {
						t.Fatalf("pattern %s shape %v anchor %v: area %d != %d",
							pat, s, a, area, int64(M)*int64(N))
					}
				}
			}
		}
	}
}

func TestSplitPointsWaveAligned(t *testing.T) {
	// The case-study geometry: M=4096, N=1024, kernel 256x128, 108 PEs.
	// t2 = 8, so one full wave is 13 rows of tiles (13*8=104 ≤ 108);
	// wave-aligned split candidates must include 13*256=3328 and the
	// maximal split 4096 is excluded (M divisible → Pattern I).
	a := kernel.New(256, 128, 32, kernel.DefaultConfig())
	pts := splitPointsM(4096, 1024, a, 108)
	has := func(v int) bool {
		for _, p := range pts {
			if p == v {
				return true
			}
		}
		return false
	}
	if !has(13 * 256) {
		t.Fatalf("wave-aligned split 3328 missing from %v", pts)
	}
	if has(4096) {
		t.Fatalf("degenerate full split present in %v", pts)
	}
	for _, p := range pts {
		if p%256 != 0 || p <= 0 || p >= 4096 {
			t.Fatalf("split %d not aligned interior point", p)
		}
	}
}

func TestPlanProducesValidPrograms(t *testing.T) {
	gpu, npu := libs(t)
	shapes := []tensor.GemmShape{
		{M: 4096, N: 1024, K: 4096},
		{M: 105, N: 1024, K: 12544},
		{M: 1, N: 1, K: 1},
		{M: 17, N: 33, K: 129},
		{M: 2048, N: 2048, K: 64},
		{M: 3, N: 50000, K: 128},
	}
	for _, lib := range []*tune.Library{gpu, npu} {
		pl := NewPlanner(lib)
		for _, s := range shapes {
			prog, stats, err := pl.Plan(s)
			if err != nil {
				t.Fatalf("%s %v: %v", lib.HW.Name, s, err)
			}
			if err := prog.Validate(); err != nil {
				t.Fatalf("%s %v: %v", lib.HW.Name, s, err)
			}
			if stats.Candidates < 1 {
				t.Fatalf("%s %v: no candidates evaluated", lib.HW.Name, s)
			}
			if prog.EstimatedCost <= 0 {
				t.Fatalf("%s %v: non-positive cost", lib.HW.Name, s)
			}
		}
	}
}

func TestPlanInvalidInputs(t *testing.T) {
	gpu, _ := libs(t)
	pl := NewPlanner(gpu)
	if _, _, err := pl.Plan(tensor.GemmShape{M: 0, N: 1, K: 1}); err == nil {
		t.Fatal("invalid shape must fail")
	}
	empty := &Planner{Lib: &tune.Library{HW: hw.A100()}}
	if _, _, err := empty.Plan(tensor.GemmShape{M: 1, N: 1, K: 1}); err == nil {
		t.Fatal("empty library must fail")
	}
}

// The headline mechanism: on the case-study shape the polymerized program
// must beat the best single-kernel program on the simulator.
func TestPolymerizationBeatsSingleKernel(t *testing.T) {
	gpu, _ := libs(t)
	pl := NewPlanner(gpu)
	shape := tensor.GemmShape{M: 4096, N: 1024, K: 4096}

	multi, _, err := pl.Plan(shape)
	if err != nil {
		t.Fatal(err)
	}
	single, err := pl.PlanPatternI(shape)
	if err != nil {
		t.Fatal(err)
	}
	mc := multi.Simulate(gpu.HW).Cycles
	sc := single.Simulate(gpu.HW).Cycles
	if mc > sc*1.001 {
		t.Fatalf("polymerized program (%g cycles) worse than single-kernel (%g)", mc, sc)
	}
}

func TestPruningPreservesResult(t *testing.T) {
	gpu, npu := libs(t)
	for _, lib := range []*tune.Library{gpu, npu} {
		for _, s := range []tensor.GemmShape{
			{M: 4096, N: 1024, K: 4096},
			{M: 300, N: 700, K: 900},
		} {
			on := NewPlanner(lib)
			off := NewPlanner(lib)
			off.DisablePruning = true
			progOn, statsOn, err := on.Plan(s)
			if err != nil {
				t.Fatal(err)
			}
			progOff, statsOff, err := off.Plan(s)
			if err != nil {
				t.Fatal(err)
			}
			if progOn.EstimatedCost != progOff.EstimatedCost {
				t.Fatalf("%s %v: pruning changed result: %g vs %g",
					lib.HW.Name, s, progOn.EstimatedCost, progOff.EstimatedCost)
			}
			if statsOn.Candidates > statsOff.Candidates {
				t.Fatalf("pruning increased work: %d > %d", statsOn.Candidates, statsOff.Candidates)
			}
			if lib == npuLib && statsOn.PrunedAnchors == 0 && statsOff.Candidates > 50 {
				t.Logf("note: no anchors pruned for %v on %s", s, lib.HW.Name)
			}
		}
	}
}

func TestCostModelVariantsSelectDifferently(t *testing.T) {
	gpu, _ := libs(t)
	shape := tensor.GemmShape{M: 4096, N: 1024, K: 4096}
	kernVol := func(c CostModel) float64 {
		pl := NewPlanner(gpu)
		pl.Cost = c
		prog, _, err := pl.Plan(shape)
		if err != nil {
			t.Fatal(err)
		}
		k := prog.Regions[0].Kern
		return float64(k.UM) * float64(k.UN)
	}
	wave := kernVol(CostWaveOnly)
	pipe := kernVol(CostPipeOnly)
	if wave < pipe {
		t.Fatalf("wave-only picked smaller output tiles (%g) than pipe-only (%g); expected the opposite bias (Fig. 12b)", wave, pipe)
	}
}

func TestOracleAtLeastAsGoodOnSimulator(t *testing.T) {
	gpu, _ := libs(t)
	shape := tensor.GemmShape{M: 2048, N: 512, K: 1024}
	std := NewPlanner(gpu)
	prog, _, err := std.Plan(shape)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewPlanner(gpu)
	oracle.Cost = CostOracle
	oprog, _, err := oracle.Plan(shape)
	if err != nil {
		t.Fatal(err)
	}
	if oprog.EstimatedCost > prog.Simulate(gpu.HW).Cycles*1.0001 {
		t.Fatalf("oracle (%g) worse than cost-model plan (%g) on the simulator",
			oprog.EstimatedCost, prog.Simulate(gpu.HW).Cycles)
	}
}

// Property: planned programs are valid and their task counts equal the sum
// of region tile grids for arbitrary shapes.
func TestPlanProperty(t *testing.T) {
	gpu, _ := libs(t)
	pl := NewPlanner(gpu)
	f := func(seed uint64) bool {
		s := tensor.GemmShape{
			M: int(seed%5000) + 1,
			N: int(seed/5000%5000) + 1,
			K: int(seed/25000000%4000) + 1,
		}
		prog, _, err := pl.Plan(s)
		if err != nil {
			return false
		}
		if prog.Validate() != nil {
			return false
		}
		n := 0
		for _, r := range prog.Regions {
			n += r.Tasks()
		}
		return n == prog.NumTasks() && n > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionCostMatchesEquationTwo(t *testing.T) {
	gpu, _ := libs(t)
	pl := NewPlanner(gpu)
	k := gpu.Kernels[0]
	r := Region{M: 1000, N: 500, K: 700, Kern: k}
	t1, t2, t3 := r.Tiles()
	waves := math.Ceil(float64(t1*t2) / float64(gpu.HW.NumPEs))
	want := waves * gpu.PredictTask(k, t3)
	if got := pl.regionCost(r); math.Abs(got-want) > 1e-9 {
		t.Fatalf("regionCost = %g, want %g", got, want)
	}
}

func TestSketch(t *testing.T) {
	gpu, _ := libs(t)
	pl := NewPlanner(gpu)
	prog, _, err := pl.Plan(tensor.GemmShape{M: 105, N: 1024, K: 12544})
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Sketch(32, 8)
	if !strings.Contains(s, "A = ") {
		t.Fatalf("sketch missing legend:\n%s", s)
	}
	if strings.Contains(s, "?") {
		t.Fatalf("sketch has uncovered cells:\n%s", s)
	}
	if len(prog.Regions) > 1 && !strings.Contains(s, "B = ") {
		t.Fatalf("multi-region sketch missing second region:\n%s", s)
	}
	empty := &Program{Shape: tensor.GemmShape{M: 1, N: 1, K: 1}}
	if empty.Sketch(8, 4) != "(empty program)" {
		t.Fatal("empty program sketch wrong")
	}
	// Degenerate dimensions are clamped, not panicking.
	_ = prog.Sketch(0, 0)
}

func TestSplitKProgramValidation(t *testing.T) {
	shape := tensor.GemmShape{M: 64, N: 64, K: 128}
	k := kernel.New(16, 16, 16, kernel.DefaultConfig())
	good := &Program{
		Shape:   shape,
		Pattern: PatternSplitK,
		Regions: []Region{
			{M: 64, N: 64, KOff: 0, K: 64, Kern: k},
			{M: 64, N: 64, KOff: 64, K: 64, Kern: k},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid split-K program rejected: %v", err)
	}
	overlapK := &Program{
		Shape: shape,
		Regions: []Region{
			{M: 64, N: 64, KOff: 0, K: 80, Kern: k},
			{M: 64, N: 64, KOff: 64, K: 64, Kern: k},
		},
	}
	if overlapK.Validate() == nil {
		t.Fatal("overlapping K slices not detected")
	}
	gapK := &Program{
		Shape: shape,
		Regions: []Region{
			{M: 64, N: 64, KOff: 0, K: 60, Kern: k},
			{M: 64, N: 64, KOff: 64, K: 64, Kern: k},
		},
	}
	if gapK.Validate() == nil {
		t.Fatal("K gap not detected")
	}
}

func TestSplitKPlanningHelpsSkinnyShapes(t *testing.T) {
	gpu, _ := libs(t)
	// Skinny output, deep reduction: the Fig. 1 cliff shape family.
	shape := tensor.GemmShape{M: 128, N: 128, K: 65536}

	base := NewPlanner(gpu)
	baseProg, _, err := base.Plan(shape)
	if err != nil {
		t.Fatal(err)
	}
	sk := NewPlanner(gpu)
	sk.EnableSplitK = true
	skProg, _, err := sk.Plan(shape)
	if err != nil {
		t.Fatal(err)
	}
	if err := skProg.Validate(); err != nil {
		t.Fatal(err)
	}
	if skProg.Pattern != PatternSplitK {
		t.Skipf("split-K not selected (pattern %s); cost model preferred output-plane", skProg.Pattern)
	}
	bc := baseProg.Simulate(gpu.HW).Cycles
	sc := skProg.Simulate(gpu.HW).Cycles
	if sc >= bc {
		t.Fatalf("split-K program (%g cycles) slower than baseline (%g)", sc, bc)
	}
	if bc/sc < 1.5 {
		t.Fatalf("split-K speedup only %.2fx on a 1-task-starved shape", bc/sc)
	}
}

func TestSplitKNotUsedWhenDeviceFull(t *testing.T) {
	gpu, _ := libs(t)
	sk := NewPlanner(gpu)
	sk.EnableSplitK = true
	prog, _, err := sk.Plan(tensor.GemmShape{M: 4096, N: 4096, K: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Pattern == PatternSplitK {
		t.Fatal("split-K selected for a device-filling shape")
	}
}

func TestPatternSplitKString(t *testing.T) {
	if PatternSplitK.String() != "split-K" {
		t.Fatalf("String = %q", PatternSplitK.String())
	}
}

func TestExplainMatchesEstimatedCost(t *testing.T) {
	gpu, _ := libs(t)
	pl := NewPlanner(gpu)
	for _, s := range []tensor.GemmShape{
		{M: 4096, N: 1024, K: 4096},
		{M: 105, N: 1024, K: 12544},
		{M: 37, N: 768, K: 768},
	} {
		prog, _, err := pl.Plan(s)
		if err != nil {
			t.Fatal(err)
		}
		breakdown := Explain(prog, gpu)
		if len(breakdown) != len(prog.Regions) {
			t.Fatalf("breakdown rows = %d, regions = %d", len(breakdown), len(prog.Regions))
		}
		if prog.Pattern != PatternSplitK {
			if diff := math.Abs(TotalCost(breakdown) - prog.EstimatedCost); diff > 1e-6*prog.EstimatedCost {
				t.Fatalf("%v: Explain total %g != EstimatedCost %g",
					s, TotalCost(breakdown), prog.EstimatedCost)
			}
		}
		for _, rc := range breakdown {
			if rc.Tasks != rc.T1*rc.T2 {
				t.Fatal("task count inconsistent")
			}
			if rc.Cost != rc.Waves*rc.Pipe {
				t.Fatal("cost term inconsistent")
			}
		}
	}
}

func TestPlannerPatternOverride(t *testing.T) {
	gpu, _ := libs(t)
	pl := NewPlanner(gpu)
	pl.Patterns = []PatternID{PatternIII}
	prog, _, err := pl.Plan(tensor.GemmShape{M: 512, N: 1000, K: 256})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Pattern != PatternIII && prog.Pattern != PatternI {
		// Pattern III boundary candidates may degenerate to one region,
		// but the pattern tag must come from the configured set.
		t.Fatalf("pattern %s not from configured set", prog.Pattern)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanDeterministic(t *testing.T) {
	gpu, _ := libs(t)
	pl := NewPlanner(gpu)
	s := tensor.GemmShape{M: 999, N: 777, K: 555}
	p1, _, err := pl.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := pl.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() {
		t.Fatal("planning is not deterministic")
	}
}

func TestSplitPointsNWaveAligned(t *testing.T) {
	// Mirror of the M-split test: N=4096, M=1024, kernel 128x256.
	a := kernel.New(128, 256, 32, kernel.DefaultConfig())
	pts := splitPointsN(1024, 4096, a, 108)
	for _, p := range pts {
		if p%256 != 0 || p <= 0 || p >= 4096 {
			t.Fatalf("split %d not an aligned interior point", p)
		}
	}
	if len(pts) == 0 {
		t.Fatal("no vertical split candidates")
	}
}

// Property: for random shapes and anchors, split points are always aligned
// interior multiples of the anchor tile.
func TestSplitPointsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		m := int(seed%8000) + 1
		n := int(seed/8000%8000) + 1
		um := 16 * (int(seed/64000000%16) + 1)
		un := 16 * (int(seed/1024000000%16) + 1)
		a := kernel.New(um, un, 32, kernel.DefaultConfig())
		for _, p := range splitPointsM(m, n, a, 108) {
			if p <= 0 || p >= m || p%um != 0 {
				return false
			}
		}
		for _, p := range splitPointsN(m, n, a, 108) {
			if p <= 0 || p >= n || p%un != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
