package poly

import (
	"math"
	"sync"

	"mikpoly/internal/tensor"
)

// scratch holds the per-plan reusable tables. Plans may run concurrently on
// one Planner (the compiler's singleflight dedupes per shape, not globally),
// so scratch lives in a pool rather than on the Planner.
type scratch struct {
	pipe   []float64
	strips []chainStrip
}

// chainStrip memoizes one kernel's fused strip-task cycles within a chain
// plan (the fused analog of the pipe table, lazily filled because the
// hardware bound prunes most kernels before they are ever priced).
type chainStrip struct {
	cycles float64
	done   bool
}

// chainStrips returns a reset n-entry strip memo from pooled storage.
func (sc *scratch) chainStrips(n int) []chainStrip {
	if cap(sc.strips) < n {
		sc.strips = make([]chainStrip, n)
	}
	sc.strips = sc.strips[:n]
	for i := range sc.strips {
		sc.strips[i] = chainStrip{}
	}
	return sc.strips
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// pipeTable fills the per-kernel f_pipe table for this plan's reduction
// extent: pipe[i] = g_predict(K̃_i, ceil(K / uK_i)). Output-plane patterns
// never slice K, so the pipelined-task cost of every kernel is a per-plan
// constant — computing it once turns the inner scoring loop into pure integer
// wave arithmetic plus one indexed multiply.
func (p *Planner) pipeTable(sc *scratch, K int) []float64 {
	n := len(p.Lib.Kernels)
	if cap(sc.pipe) < n {
		sc.pipe = make([]float64, n)
	}
	sc.pipe = sc.pipe[:n]
	for i := range p.Lib.Kernels {
		k := &p.Lib.Kernels[i]
		t3 := (K + k.UK - 1) / k.UK
		sc.pipe[i] = p.Lib.PredictAt(i, t3)
	}
	return sc.pipe
}

// kernelRegionCost is regionCost with the g_predict lookup replaced by the
// precomputed pipe table: the cost of serving geometry g with kernel i.
func (p *Planner) kernelRegionCost(pipe []float64, i int, g rect, pes int) float64 {
	k := &p.Lib.Kernels[i]
	t1 := (g.m + k.UM - 1) / k.UM
	t2 := (g.n + k.UN - 1) / k.UN
	waves := WaveCount(t1*t2, pes)
	switch p.Cost {
	case CostWaveOnly:
		return waves
	case CostPipeOnly:
		return pipe[i]
	default:
		return waves * pipe[i]
	}
}

// evalCandidate scores one boundary candidate without materializing a
// program: the anchored primary region (when the pattern has one) uses the
// anchor kernel, every other region takes the argmin kernel. Region terms are
// accumulated in enumeration order, so the result is bitwise identical to
// scoring the materialized program.
func (p *Planner) evalCandidate(pipe []float64, geoms []rect, anchorIdx int, anchored bool, pes int) float64 {
	total := 0.0
	for gi := range geoms {
		var c float64
		if gi == 0 && anchored {
			c = p.kernelRegionCost(pipe, anchorIdx, geoms[gi], pes)
		} else {
			c = math.Inf(1)
			for i := range p.Lib.Kernels {
				if rc := p.kernelRegionCost(pipe, i, geoms[gi], pes); rc < c {
					c = rc
				}
			}
		}
		total += c
	}
	return total
}

// winner identifies the cheapest candidate seen so far by its enumeration
// coordinates, so the search can defer program construction until the argmin
// is final. For PatternSplitK, anchorIdx is the kernel index and candIdx the
// split count.
type winner struct {
	valid     bool
	cost      float64
	pat       PatternID
	anchorIdx int
	candIdx   int
}

// ordinalLess orders winners by enumeration position (pattern-list index,
// anchor, candidate) — the tie-break that makes the parallel merge agree with
// the sequential first-strict-improvement rule. patIdx is the pattern's index
// in the planner's pattern list (split-K sorts last via a sentinel).
func ordinalLess(aPatIdx, aAnchor, aCand, bPatIdx, bAnchor, bCand int) bool {
	if aPatIdx != bPatIdx {
		return aPatIdx < bPatIdx
	}
	if aAnchor != bAnchor {
		return aAnchor < bAnchor
	}
	return aCand < bCand
}

// skeletons returns the memoized boundary-candidate list for (pattern, shape,
// anchor). The returned value is shared and must be treated as read-only.
func (p *Planner) skeletons(pat PatternID, shape tensor.GemmShape, anchorIdx int) [][]rect {
	return cachedBoundaryCandidates(pat, shape.M, shape.N, p.Lib.Kernels[anchorIdx], p.Lib.HW.NumPEs)
}

// buildWinner materializes the winning candidate — the only program
// construction the non-oracle search performs. Kernel choices are re-derived
// with the same argmin the scoring pass used, so the built program is exactly
// the one that was scored.
func (p *Planner) buildWinner(pipe []float64, shape tensor.GemmShape, win winner) *Program {
	if win.pat == PatternSplitK {
		prog := p.buildSplitK(shape, win.anchorIdx, win.candIdx)
		prog.EstimatedCost = win.cost
		return prog
	}
	geoms := p.skeletons(win.pat, shape, win.anchorIdx)[win.candIdx]
	pes := p.Lib.HW.NumPEs
	anchored := win.pat != PatternI
	prog := &Program{
		Shape:         shape,
		Pattern:       win.pat,
		Regions:       make([]Region, 0, len(geoms)),
		EstimatedCost: win.cost,
	}
	for gi, g := range geoms {
		ki := win.anchorIdx
		if !(gi == 0 && anchored) {
			bestCost := math.Inf(1)
			for i := range p.Lib.Kernels {
				if rc := p.kernelRegionCost(pipe, i, g, pes); rc < bestCost {
					bestCost = rc
					ki = i
				}
			}
		}
		prog.Regions = append(prog.Regions, Region{
			M0: g.m0, N0: g.n0, M: g.m, N: g.n, K: shape.K, Kern: p.Lib.Kernels[ki],
		})
	}
	return prog
}
