package poly

import (
	"math/rand"
	"testing"

	"mikpoly/internal/hw"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

func TestWaveCount(t *testing.T) {
	cases := []struct {
		tasks, pes int
		want       float64
	}{
		{0, 108, 0},
		{1, 108, 1},
		{108, 108, 1},
		{109, 108, 2},
		{216, 108, 2},
		{217, 108, 3},
		{5, 1, 5},
	}
	for _, c := range cases {
		if got := WaveCount(c.tasks, c.pes); got != c.want {
			t.Errorf("WaveCount(%d, %d) = %g, want %g", c.tasks, c.pes, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("WaveCount with pes=0 did not panic")
		}
	}()
	WaveCount(1, 0)
}

// TestExplainAgreesWithPlannerCost is the anti-drift regression for the
// three formerly duplicated wave-count computations: for randomized shapes,
// the planner's incremental search total (EstimatedCost), the standalone
// ProgramCost evaluator, and the Explain breakdown must all agree exactly.
func TestExplainAgreesWithPlannerCost(t *testing.T) {
	for _, hardware := range []hw.Hardware{hw.A100(), hw.Ascend910()} {
		lib, err := tune.Generate(hardware, tune.Options{NGen: 6, NSyn: 9, NMik: 10, NPred: 256})
		if err != nil {
			t.Fatal(err)
		}
		p := NewPlanner(lib)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 40; i++ {
			shape := tensor.GemmShape{
				M: 1 + rng.Intn(4096),
				N: 1 + rng.Intn(4096),
				K: 1 + rng.Intn(2048),
			}
			prog, _, err := p.Plan(shape)
			if err != nil {
				t.Fatalf("%s %v: %v", hardware.Name, shape, err)
			}
			if got := ProgramCost(prog, lib); got != prog.EstimatedCost {
				t.Errorf("%s %v: ProgramCost %g != planner EstimatedCost %g",
					hardware.Name, shape, got, prog.EstimatedCost)
			}
			costs := Explain(prog, lib)
			if got := TotalCost(costs); got != prog.EstimatedCost {
				t.Errorf("%s %v: TotalCost(Explain) %g != planner EstimatedCost %g",
					hardware.Name, shape, got, prog.EstimatedCost)
			}
			for ri, rc := range costs {
				if want := WaveCount(rc.Tasks, lib.HW.NumPEs); rc.Waves != want {
					t.Errorf("%s %v region %d: Explain waves %g != WaveCount %g",
						hardware.Name, shape, ri, rc.Waves, want)
				}
			}
		}
	}
}

// TestSplitKCostAgreement extends the cross-check to the split-K pattern,
// whose co-run wave semantics differ from the per-region sum: the planner's
// splitKCost and ProgramCost must agree on chosen split-K programs.
func TestSplitKCostAgreement(t *testing.T) {
	lib, err := tune.Generate(hw.A100(), tune.Options{NGen: 6, NSyn: 9, NMik: 10, NPred: 256})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlanner(lib)
	p.EnableSplitK = true
	rng := rand.New(rand.NewSource(11))
	seen := 0
	for i := 0; i < 60; i++ {
		// Skinny outputs with deep reductions favour split-K.
		shape := tensor.GemmShape{
			M: 1 + rng.Intn(64),
			N: 1 + rng.Intn(64),
			K: 256 + rng.Intn(1<<17),
		}
		prog, _, err := p.Plan(shape)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if got := ProgramCost(prog, lib); got != prog.EstimatedCost {
			t.Errorf("%v (%s): ProgramCost %g != EstimatedCost %g",
				shape, prog.Pattern, got, prog.EstimatedCost)
		}
		if prog.Pattern == PatternSplitK {
			seen++
		}
	}
	if seen == 0 {
		t.Error("no split-K program selected across 60 skinny shapes; suite lost its split-K coverage")
	}
}
