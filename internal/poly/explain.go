package poly

import (
	"mikpoly/internal/sim"
	"mikpoly/internal/tune"
)

// RegionCost is the per-region breakdown of Eq. 2 for one program — the
// structured form of what cmd/mikexplain prints.
type RegionCost struct {
	// Region is the loop nest being costed.
	Region Region
	// T1, T2, T3 are the tile counts after local padding.
	T1, T2, T3 int
	// Tasks is f_parallel: the pipelined-task count.
	Tasks int
	// Waves is f_wave: ceil(Tasks / |P_multi|).
	Waves float64
	// Pipe is f_pipe: g_predict(T3) in cycles.
	Pipe float64
	// Cost is Waves × Pipe.
	Cost float64
}

// Explain evaluates Eq. 2 term by term for a program against a library —
// the developer view of why the cost model preferred this strategy. Wave
// counts come from the shared WaveCount helper, so the breakdown can never
// drift from the planner's scoring; for output-plane patterns
// TotalCost(Explain(prog, lib)) equals ProgramCost(prog, lib) exactly, while
// split-K programs co-run their regions and must be totalled with
// ProgramCost instead.
func Explain(prog *Program, lib *tune.Library) []RegionCost {
	out := make([]RegionCost, 0, len(prog.Regions))
	for _, r := range prog.Regions {
		t1, t2, t3 := r.Tiles()
		tasks := r.Tasks()
		waves := WaveCount(tasks, lib.HW.NumPEs)
		var pipe float64
		if r.Fused() {
			// A fused region's pipelined task is the whole chain strip;
			// price it the way the simulator runs it.
			pipe = sim.PipelinedTaskCycles(r.chainTask(lib.HW), lib.HW.FairShareBandwidth())
		} else {
			pipe = lib.PredictTask(r.Kern, t3)
		}
		out = append(out, RegionCost{
			Region: r,
			T1:     t1, T2: t2, T3: t3,
			Tasks: tasks,
			Waves: waves,
			Pipe:  pipe,
			Cost:  waves * pipe,
		})
	}
	return out
}

// TotalCost sums the breakdown.
func TotalCost(costs []RegionCost) float64 {
	var sum float64
	for _, c := range costs {
		sum += c.Cost
	}
	return sum
}
