package poly

import (
	"strings"
	"testing"

	"mikpoly/internal/kernel"
	"mikpoly/internal/tensor"
)

func chainSpec2(m int) ChainSpec {
	return ChainSpec{Stages: []ChainStageSpec{
		{Shape: tensor.GemmShape{M: m, N: 256, K: 512}, Epilogue: EpReLU},
		{Shape: tensor.GemmShape{M: m, N: 128, K: 256}},
	}}
}

func TestChainSpecValidate(t *testing.T) {
	if err := chainSpec2(4096).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		spec ChainSpec
		want string
	}{
		{"single stage", ChainSpec{Stages: []ChainStageSpec{
			{Shape: tensor.GemmShape{M: 64, N: 64, K: 64}}}}, "at least 2 stages"},
		{"mismatched M", ChainSpec{Stages: []ChainStageSpec{
			{Shape: tensor.GemmShape{M: 64, N: 32, K: 64}},
			{Shape: tensor.GemmShape{M: 128, N: 16, K: 32}}}}, "differs from shared M"},
		{"broken chaining", ChainSpec{Stages: []ChainStageSpec{
			{Shape: tensor.GemmShape{M: 64, N: 32, K: 64}},
			{Shape: tensor.GemmShape{M: 64, N: 16, K: 48}}}}, "does not consume"},
		{"final epilogue", ChainSpec{Stages: []ChainStageSpec{
			{Shape: tensor.GemmShape{M: 64, N: 32, K: 64}},
			{Shape: tensor.GemmShape{M: 64, N: 16, K: 32}, Epilogue: EpReLU}}}, "final chain stage"},
		{"invalid shape", ChainSpec{Stages: []ChainStageSpec{
			{Shape: tensor.GemmShape{M: 64, N: 0, K: 64}},
			{Shape: tensor.GemmShape{M: 64, N: 16, K: 0}}}}, "invalid shape"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestPlanChainProducesValidProgram(t *testing.T) {
	gpu, npu := libs(t)
	for name, l := range map[string]*Planner{"gpu": NewPlanner(gpu), "npu": NewPlanner(npu)} {
		spec := chainSpec2(4096)
		prog, st, err := l.PlanChain(spec)
		if err != nil {
			t.Fatalf("%s: PlanChain: %v", name, err)
		}
		if prog.Pattern != PatternChain {
			t.Fatalf("%s: pattern %v, want chain", name, prog.Pattern)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: planned program invalid: %v", name, err)
		}
		if st.Candidates == 0 {
			t.Fatalf("%s: no candidates costed", name)
		}
		if prog.EstimatedCost <= 0 {
			t.Fatalf("%s: estimated cost %g", name, prog.EstimatedCost)
		}
		// The fused program's shape is the final stage's.
		if prog.Shape != spec.Shape() {
			t.Fatalf("%s: program shape %v, want %v", name, prog.Shape, spec.Shape())
		}
		for _, r := range prog.Regions {
			if !r.Fused() {
				t.Fatalf("%s: chain program has unfused region %+v", name, r)
			}
			// Never split-K, never column-partitioned: full-width row bands.
			if r.KOff != 0 || r.K != prog.Shape.K || r.N0 != 0 || r.N != prog.Shape.N {
				t.Fatalf("%s: fused region %+v is not a full-width row band", name, r)
			}
		}
	}
}

func TestPlanChainRaggedM(t *testing.T) {
	gpu, _ := libs(t)
	p := NewPlanner(gpu)
	prog, _, err := p.PlanChain(chainSpec2(4097))
	if err != nil {
		t.Fatalf("PlanChain ragged: %v", err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("ragged chain program invalid: %v", err)
	}
	rows := 0
	for _, r := range prog.Regions {
		rows += r.M
	}
	if rows != 4097 {
		t.Fatalf("regions cover %d rows, want 4097", rows)
	}
}

func TestPlanChainScratchPruning(t *testing.T) {
	gpu, _ := libs(t)
	p := NewPlanner(gpu)
	// An intermediate wider than the hardware bound must be unplannable.
	w := ChainWidthLimit(gpu.HW)
	spec := ChainSpec{Stages: []ChainStageSpec{
		{Shape: tensor.GemmShape{M: 4096, N: 8 * w, K: 256}, Epilogue: EpReLU},
		{Shape: tensor.GemmShape{M: 4096, N: 64, K: 8 * w}},
	}}
	if _, st, err := p.PlanChain(spec); err == nil {
		t.Fatalf("oversized chain planned (pruned %d anchors)", st.PrunedAnchors)
	}
}

func TestChainTaskSavesTraffic(t *testing.T) {
	gpu, _ := libs(t)
	h := gpu.HW
	k := gpu.Kernels[0]
	fusedRegion := Region{M: 1024, N: 128, K: 256, Kern: k,
		Chain: []FusedStage{{N: 256, K: 512, Epilogue: EpReLU}}}
	fused := fusedRegion.chainTask(h)

	// The unfused pair, one row strip each: each stage standalone, loading
	// its left operand from and storing its output to global memory.
	task1 := k.PipelinedTask(h, (512+k.UK-1)/k.UK)
	task2 := k.PipelinedTask(h, (256+k.UK-1)/k.UK)
	t2a := (256 + k.UN - 1) / k.UN
	t2b := (128 + k.UN - 1) / k.UN
	unfusedMem := float64(t2a)*task1.MemBytes + float64(t2b)*task2.MemBytes
	if fused.MemBytes >= unfusedMem {
		t.Fatalf("fused strip streams %g bytes, unfused %g — no saving", fused.MemBytes, unfusedMem)
	}
	if fused.ComputeCycles <= 0 || fused.StartupCycles <= 0 {
		t.Fatalf("degenerate fused task %+v", fused)
	}
}

func TestValidateChainInvariants(t *testing.T) {
	shape := tensor.GemmShape{M: 256, N: 64, K: 128}
	k := kernel.New(16, 16, 16, kernel.DefaultConfig())
	base := Region{M: 256, N: 64, K: 128, Kern: k,
		Chain: []FusedStage{{N: 128, K: 96, Epilogue: EpReLU}}}
	if err := base.validateChain(shape); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	bad := base
	bad.N0, bad.N = 16, 48
	if err := bad.validateChain(shape); err == nil {
		t.Fatal("column-partitioned fused region accepted")
	}
	bad = base
	bad.KOff, bad.K = 64, 64
	if err := bad.validateChain(shape); err == nil {
		t.Fatal("split-K fused region accepted")
	}
	bad = base
	bad.Chain = []FusedStage{{N: 100, K: 96}} // final K=128 != 100
	if err := bad.validateChain(shape); err == nil {
		t.Fatal("broken stage chaining accepted")
	}
}

func TestProgramValidateChainPattern(t *testing.T) {
	gpu, _ := libs(t)
	p := NewPlanner(gpu)
	prog, _, err := p.PlanChain(chainSpec2(4096))
	if err != nil {
		t.Fatal(err)
	}
	// A chain region under a non-chain pattern (and vice versa) must fail.
	bad := *prog
	bad.Pattern = PatternI
	if err := bad.Validate(); err == nil {
		t.Fatal("fused regions under PatternI accepted")
	}
	plain, _, err := p.Plan(tensor.GemmShape{M: 4096, N: 128, K: 256})
	if err != nil {
		t.Fatal(err)
	}
	bad2 := *plain
	bad2.Pattern = PatternChain
	if err := bad2.Validate(); err == nil {
		t.Fatal("unfused regions under PatternChain accepted")
	}
}

func TestChainSpecString(t *testing.T) {
	got := chainSpec2(64).String()
	want := "chain (64,256,512)+relu (64,128,256)"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
