package poly

import (
	"fmt"
	"sync"

	"context"

	"mikpoly/internal/tensor"
)

// searchUnit is one independently evaluable slice of the candidate space: all
// boundary candidates of one (pattern, anchor) pair. patIdx is the pattern's
// index in the planner's pattern list, so unit order equals sequential
// enumeration order.
type searchUnit struct {
	patIdx    int
	pat       PatternID
	anchorIdx int
}

// workerResult is one worker's local argmin plus its search statistics.
type workerResult struct {
	win        winner
	winPatIdx  int
	candidates int
	pruned     int
}

// maxPlanWorkers caps the fan-out: beyond a handful of goroutines the
// per-plan spawn cost dominates the microsecond-scale search itself.
const maxPlanWorkers = 16

// planParallel evaluates (pattern, anchor) units across p.Workers goroutines
// and merges per-worker argmins by (cost, enumeration ordinal). Because every
// candidate's cost is computed by exactly the arithmetic the sequential
// search uses, and the merge prefers the earliest-enumerated candidate among
// equal costs — the same program the sequential first-strict-improvement rule
// keeps — the chosen program is bitwise identical to planSequential's.
// Branch-and-bound prunes against per-worker bounds, which are never tighter
// than the sequential bound at the same point, so pruning can only skip
// candidates that provably lose (or tie later in enumeration order) — never
// the merged winner.
func (p *Planner) planParallel(ctx context.Context, shape tensor.GemmShape, stats *PlanStats) (*Program, error) {
	sc := getScratch()
	defer putScratch(sc)
	pipe := p.pipeTable(sc, shape.K)
	pes := p.Lib.HW.NumPEs

	pats := p.patterns()
	units := make([]searchUnit, 0, len(pats)*len(p.Lib.Kernels))
	for pi, pat := range pats {
		if pat == PatternI {
			// Pattern I ignores the anchor beyond region kernel choice;
			// one unit covers all kernels (the sequential break).
			units = append(units, searchUnit{patIdx: pi, pat: pat, anchorIdx: 0})
			continue
		}
		for ai := range p.Lib.Kernels {
			units = append(units, searchUnit{patIdx: pi, pat: pat, anchorIdx: ai})
		}
	}

	workers := p.Workers
	if workers > maxPlanWorkers {
		workers = maxPlanWorkers
	}
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]workerResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			res.winPatIdx = -1
			// Strided assignment keeps each worker's units in increasing
			// enumeration order, so its local strict-improvement argmin is
			// already (cost, ordinal)-minimal over the units it saw.
			for ui := w; ui < len(units); ui += workers {
				if ctx.Err() != nil {
					return
				}
				u := units[ui]
				if !p.DisablePruning && res.win.valid && u.pat != PatternI {
					if p.anchorLowerBoundAt(pipe, u.anchorIdx) >= res.win.cost {
						res.pruned++
						continue
					}
				}
				for ci, geoms := range p.skeletons(u.pat, shape, u.anchorIdx) {
					total := p.evalCandidate(pipe, geoms, u.anchorIdx, u.pat != PatternI, pes)
					res.candidates++
					if !res.win.valid || total < res.win.cost {
						res.win = winner{valid: true, cost: total, pat: u.pat, anchorIdx: u.anchorIdx, candIdx: ci}
						res.winPatIdx = u.patIdx
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("poly: planning aborted: %w", err)
	}

	var win winner
	winPatIdx := -1
	for _, res := range results {
		stats.Candidates += res.candidates
		stats.PrunedAnchors += res.pruned
		if !res.win.valid {
			continue
		}
		switch {
		case !win.valid, res.win.cost < win.cost:
			win, winPatIdx = res.win, res.winPatIdx
		case res.win.cost == win.cost &&
			ordinalLess(res.winPatIdx, res.win.anchorIdx, res.win.candIdx, winPatIdx, win.anchorIdx, win.candIdx):
			win, winPatIdx = res.win, res.winPatIdx
		}
	}

	if p.EnableSplitK {
		// Split-K enumerates after every output-plane pattern, so scoring
		// it sequentially against the merged bound preserves order.
		p.evalSplitK(shape, stats, &win)
	}
	if !win.valid {
		return nil, nil
	}
	return p.buildWinner(pipe, shape, win), nil
}
