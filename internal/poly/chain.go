// Multi-op IR: fused stage chains. A program region may carry a chain of
// GEMM stages (GEMM → elementwise epilogue → GEMM → …) computed strip by
// strip, with every intermediate strip resident in M_local instead of
// round-tripping through M_global — the whole-graph polymerization step the
// per-operator patterns of Fig. 5 cannot express. The region's own geometry
// describes the *final* stage's output block; Chain lists the stages that
// precede it in dataflow order.
package poly

import (
	"fmt"
	"strings"

	"mikpoly/internal/hw"
	"mikpoly/internal/kernel"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
)

// EpilogueKind names the elementwise nonlinearity applied to a fused stage's
// output before the next stage consumes it. It mirrors engine.Activation but
// lives here so the planner IR does not depend on the execution layer (the
// engine imports poly, never the reverse).
type EpilogueKind int

const (
	// EpNone applies no nonlinearity.
	EpNone EpilogueKind = iota
	// EpReLU applies max(0, x).
	EpReLU
	// EpGELU applies the tanh-approximated GELU.
	EpGELU
)

func (e EpilogueKind) String() string {
	switch e {
	case EpNone:
		return "none"
	case EpReLU:
		return "relu"
	case EpGELU:
		return "gelu"
	default:
		return fmt.Sprintf("EpilogueKind(%d)", int(e))
	}
}

// FusedStage is one intermediate GEMM stage of a fused chain: an M×N GEMM
// with reduction depth K whose output (after the elementwise epilogue) feeds
// the next stage from on-chip scratch. M is the region's M; successive
// stages must chain shapes (next.K == this.N), and the final stage of the
// chain is the region itself (Region.N, Region.K).
type FusedStage struct {
	// N is the stage's output width.
	N int
	// K is the stage's reduction depth.
	K int
	// Epilogue is applied elementwise to the stage output before the next
	// stage consumes it.
	Epilogue EpilogueKind `json:",omitempty"`
}

// Fused reports whether the region carries a fused stage chain.
func (r Region) Fused() bool { return len(r.Chain) > 0 }

// forEachStage visits every GEMM stage of a fused region in dataflow order —
// the Chain prefix followed by the final stage described by the region's own
// geometry (which never carries an epilogue — chains end in a GEMM). An
// iterator rather than a materialized slice, so the planner's scoring loop
// stays allocation-free.
func (r Region) forEachStage(fn func(st FusedStage, first, last bool)) {
	for i, st := range r.Chain {
		fn(st, i == 0, false)
	}
	fn(FusedStage{N: r.N, K: r.K}, len(r.Chain) == 0, true)
}

// validateChain checks the fused-chain invariants for a region inside a
// program of the given shape: full-width row band, shape chaining between
// stages, no reduction slicing (split-K partials are not final values, so a
// nonlinear inter-stage epilogue cannot be fused — see engine/epilogue.go).
func (r Region) validateChain(shape tensor.GemmShape) error {
	if r.N0 != 0 || r.N != shape.N {
		return fmt.Errorf("poly: fused region %+v is not a full-width row band of %v", r, shape)
	}
	if r.KOff != 0 || r.K != shape.K {
		return fmt.Errorf("poly: fused region %+v slices the reduction dimension", r)
	}
	prev := -1
	for i, st := range r.Chain {
		if st.N <= 0 || st.K <= 0 {
			return fmt.Errorf("poly: chain stage %d has invalid dims %dx%d", i, st.N, st.K)
		}
		if prev >= 0 && st.K != prev {
			return fmt.Errorf("poly: chain stage %d reduction %d does not chain from previous width %d", i, st.K, prev)
		}
		prev = st.N
	}
	if prev >= 0 && r.K != prev {
		return fmt.Errorf("poly: final stage reduction %d does not chain from width %d", r.K, prev)
	}
	return nil
}

// maxChainWidth is the widest buffered operand any stage of the chain needs
// in on-chip scratch: intermediate outputs (Chain[i].N) are produced there,
// and every non-first stage reads its left operand from there.
func (r Region) maxChainWidth() int {
	w := 0
	for _, st := range r.Chain {
		if st.N > w {
			w = st.N
		}
	}
	return w
}

// ChainScratchBytes is the M_local working set of one fused strip task under
// kernel k: two ping-pong row-strip buffers (one strip's input, one strip's
// output, each UM × maxWidth in accumulation precision) plus the kernel's
// own operand staging. The accumulator tile lives in the separate
// accumulator storage and is not counted here.
func ChainScratchBytes(k kernel.MicroKernel, maxWidth int, h hw.Hardware) int {
	return 2*k.UM*maxWidth*h.OutputBytes + k.Footprint(h)
}

// ChainWidthLimit is the widest intermediate a fused chain can buffer on h
// under the smallest admissible kernel strip (one tileGrid-high row strip,
// double buffered in accumulation precision) — the hardware-aware bound the
// chain detector applies before the planner ever costs a candidate
// (strategy hierarchization: prune by hardware limits first).
func ChainWidthLimit(h hw.Hardware) int {
	return h.LocalMemBytes / (2 * tileGrid * h.OutputBytes)
}

// chainTask builds the simulator task for one row strip (UM rows) of a fused
// region: every stage's tile grid runs on one PE with the intermediate strip
// resident in M_local. Only the first stage streams its left operand from
// M_global; later stages stream just their right-hand operand, and only the
// final stage stores — the inter-stage traffic saving the fusion exists for.
func (r Region) chainTask(h hw.Hardware) sim.Task {
	k := r.Kern
	var compute, mem float64
	r.forEachStage(func(st FusedStage, first, last bool) {
		t2 := (st.N + k.UN - 1) / k.UN
		t3 := (st.K + k.UK - 1) / k.UK
		inst := float64(t2 * t3)
		compute += inst * k.InstanceComputeCycles(h)
		if st.Epilogue != EpNone {
			// One extra vector pass over the stage's output tiles.
			compute += float64(t2) * float64(k.UM*k.UN) / (16 * float64(k.Cfg.Vec))
		}
		if first {
			mem += inst * k.InstanceLoadBytes(h)
		} else {
			mem += inst * k.RHSLoadBytes(h)
		}
		if last {
			mem += float64(t2) * k.StoreBytes(h)
		}
	})
	return sim.Task{
		ComputeCycles: compute,
		MemBytes:      mem,
		StartupCycles: k.StartupCycles(h),
	}
}

// ChainStageSpec is one requested GEMM stage of a fusion chain.
type ChainStageSpec struct {
	// Shape is the stage's GEMM shape; all stages share M.
	Shape tensor.GemmShape
	// Epilogue is applied to the stage output (must be EpNone on the
	// final stage — chains end in a GEMM).
	Epilogue EpilogueKind
}

// ChainSpec is a fusion-chain planning request: an ordered list of GEMM
// stages where each stage consumes the previous stage's output as its left
// operand.
type ChainSpec struct {
	Stages []ChainStageSpec
}

// Validate checks the chain is well-formed: at least two stages, a shared M,
// shape chaining (next.K == this.N), and no epilogue on the final stage.
func (c ChainSpec) Validate() error {
	if len(c.Stages) < 2 {
		return fmt.Errorf("poly: chain needs at least 2 stages, got %d", len(c.Stages))
	}
	for i, st := range c.Stages {
		if !st.Shape.Valid() {
			return fmt.Errorf("poly: chain stage %d has invalid shape %v", i, st.Shape)
		}
		if st.Shape.M != c.Stages[0].Shape.M {
			return fmt.Errorf("poly: chain stage %d M=%d differs from shared M=%d", i, st.Shape.M, c.Stages[0].Shape.M)
		}
		if i > 0 && st.Shape.K != c.Stages[i-1].Shape.N {
			return fmt.Errorf("poly: chain stage %d reduction %d does not consume previous width %d",
				i, st.Shape.K, c.Stages[i-1].Shape.N)
		}
	}
	if c.Stages[len(c.Stages)-1].Epilogue != EpNone {
		return fmt.Errorf("poly: final chain stage cannot carry an epilogue")
	}
	return nil
}

// Shape is the final stage's GEMM shape — the shape of the fused program.
func (c ChainSpec) Shape() tensor.GemmShape {
	return c.Stages[len(c.Stages)-1].Shape
}

// prefix returns the chain's intermediate stages as region FusedStages.
func (c ChainSpec) prefix() []FusedStage {
	out := make([]FusedStage, len(c.Stages)-1)
	for i, st := range c.Stages[:len(c.Stages)-1] {
		out[i] = FusedStage{N: st.Shape.N, K: st.Shape.K, Epilogue: st.Epilogue}
	}
	return out
}

// maxWidth is the widest buffered intermediate of the chain.
func (c ChainSpec) maxWidth() int {
	w := 0
	for _, st := range c.Stages[:len(c.Stages)-1] {
		if st.Shape.N > w {
			w = st.Shape.N
		}
	}
	return w
}

// String is a content fingerprint of the request, usable as a plan-cache
// key: stage shapes and epilogues fully determine the planned program for a
// fixed library.
func (c ChainSpec) String() string {
	var b strings.Builder
	b.WriteString("chain")
	for _, st := range c.Stages {
		fmt.Fprintf(&b, " %v", st.Shape)
		if st.Epilogue != EpNone {
			b.WriteByte('+')
			b.WriteString(st.Epilogue.String())
		}
	}
	return b.String()
}
