package poly

import (
	"context"
	"fmt"
	"math"
	"time"

	"mikpoly/internal/hw"
	"mikpoly/internal/kernel"
	"mikpoly/internal/obs"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// PlannerVersion identifies the planning algorithm generation. A persisted
// program snapshot records the version it was planned under; loading it into
// a planner of a different version is rejected, because two versions may
// legitimately choose different programs for the same (shape, library) and a
// snapshot must never pin a replica to a predecessor's decisions. Bump this
// whenever a change alters which program the search selects or its estimated
// cost bits (the BENCH_planner.json fingerprints are the oracle: if refreshing
// the baseline is required, so is bumping the version).
const PlannerVersion = 1

// CostModel selects how candidate programs are scored. The variants other
// than CostFull exist for the ablation of Fig. 12(b).
type CostModel int

const (
	// CostFull is the paper's model, Eq. 2: Σ_i f_wave × f_pipe.
	CostFull CostModel = iota
	// CostWaveOnly scores by Σ_i f_wave alone (MikPoly-Wave): it chases
	// minimal wave counts and therefore over-selects large micro-kernels.
	CostWaveOnly
	// CostPipeOnly scores by Σ_i f_pipe alone (MikPoly-Pipe): it chases
	// the cheapest single pipelined task and over-selects small kernels.
	CostPipeOnly
	// CostOracle simulates every candidate program on the substrate and
	// picks the true optimum (MikPoly-Oracle) — far too slow for runtime
	// use (§5.3.2) but the reference point for cost-model quality.
	CostOracle
)

func (c CostModel) String() string {
	switch c {
	case CostFull:
		return "full"
	case CostWaveOnly:
		return "wave-only"
	case CostPipeOnly:
		return "pipe-only"
	case CostOracle:
		return "oracle"
	default:
		return fmt.Sprintf("CostModel(%d)", int(c))
	}
}

// PlanStats reports what the online search did — the polymerization overhead
// of Fig. 12(a).
type PlanStats struct {
	// Candidates is the number of fully costed candidate programs.
	Candidates int
	// PrunedAnchors counts anchor kernels skipped by branch-and-bound.
	PrunedAnchors int
	// Elapsed is the wall-clock planning time of this Go implementation.
	Elapsed time.Duration
}

// OnlineCostPerCandidate is the modeled per-candidate cost, in device-clock
// cycles, of the paper's optimized C++ runtime evaluating one polymerization
// strategy (a handful of integer divisions plus a piecewise-linear lookup —
// ~7 ns). End-to-end latencies charge MikPoly this modeled overhead rather
// than this Go process's wall-clock, which measures the wrong
// implementation; Fig. 12(a) reports both.
const OnlineCostPerCandidate = 10.0

// ModeledOverheadCycles is the deployed-runtime estimate of the online
// stage's cost for this plan.
func (st PlanStats) ModeledOverheadCycles() float64 {
	return float64(st.Candidates) * OnlineCostPerCandidate
}

// Planner performs on-the-fly micro-kernel polymerization against an offline
// library.
type Planner struct {
	// Lib is the offline-stage output (kernels + g_predict models).
	Lib *tune.Library

	// Patterns is the pattern subset to explore; nil selects the platform
	// default (GPU: I–II, NPU: I–IX) from the library's hardware.
	Patterns []PatternID

	// Cost selects the scoring model (default CostFull).
	Cost CostModel

	// DisablePruning turns off the branch-and-bound anchor skip, for the
	// online-overhead ablation.
	DisablePruning bool

	// EnableSplitK adds reduction-dimension splitting (PatternSplitK) to
	// the search — an extension beyond the paper's output-plane patterns
	// for skinny outputs with deep reductions.
	EnableSplitK bool

	// Workers > 1 evaluates candidate (pattern, anchor) units across that
	// many goroutines. The chosen program is identical to the sequential
	// search — workers merge by (cost, enumeration-ordinal), matching the
	// sequential first-strict-improvement rule — but PlanStats.Candidates
	// and PrunedAnchors may differ, because branch-and-bound prunes
	// against per-worker bounds. Ignored under CostOracle.
	Workers int

	// Trace, when non-nil and enabled, records hierarchical spans for the
	// search (poly.plan → per-pattern enumeration → validate). It never
	// affects which program is chosen. Per-pattern spans are recorded only
	// by the sequential search; the parallel search records the outer
	// poly.plan span alone.
	Trace *obs.Tracer
}

// NewPlanner returns a planner with the platform-default pattern set.
func NewPlanner(lib *tune.Library) *Planner { return &Planner{Lib: lib} }

func (p *Planner) patterns() []PatternID {
	if p.Patterns != nil {
		return p.Patterns
	}
	if p.Lib.HW.Scheduler == hw.ScheduleStaticMaxMin {
		return npuPatternSet
	}
	return gpuPatternSet
}

// regionCost evaluates one (R_i, K̃_i) term of Eq. 2 under the active cost
// model: f_wave = WaveCount(f_parallel, |P_multi|), f_pipe = g_predict(f_num).
func (p *Planner) regionCost(r Region) float64 {
	t1, t2, t3 := r.Tiles()
	waves := WaveCount(t1*t2, p.Lib.HW.NumPEs)
	switch p.Cost {
	case CostWaveOnly:
		return waves
	case CostPipeOnly:
		return p.Lib.PredictTask(r.Kern, t3)
	default:
		return waves * p.Lib.PredictTask(r.Kern, t3)
	}
}

// bestKernelFor picks the library kernel minimizing the region cost — exact
// for Eq. 2 because region terms are independent given boundaries.
func (p *Planner) bestKernelFor(geom rect, K int) (Region, float64) {
	best := Region{}
	bestCost := math.Inf(1)
	for _, k := range p.Lib.Kernels {
		r := Region{M0: geom.m0, N0: geom.n0, M: geom.m, N: geom.n, K: K, Kern: k}
		if c := p.regionCost(r); c < bestCost {
			bestCost = c
			best = r
		}
	}
	return best, bestCost
}

// Plan produces the optimized tensor program S* for the runtime shape
// (Algorithm 1, On-the-Fly Polymerization).
func (p *Planner) Plan(shape tensor.GemmShape) (*Program, PlanStats, error) {
	return p.PlanContext(context.Background(), shape)
}

// PlanContext is Plan with cooperative cancellation: the search checks ctx
// between anchor kernels and aborts with ctx's error once it is done, so a
// serving layer can impose a planning deadline and fall back to the
// always-legal single-kernel program (FallbackProgram) instead of blocking.
//
// The search itself is allocation-free on the hot path: candidates are costed
// from pooled scratch tables and memoized pattern skeletons, and only the
// winning program is materialized (the losing candidates — including the
// single-kernel fallback-shaped Pattern-I ones — are never built).
func (p *Planner) PlanContext(ctx context.Context, shape tensor.GemmShape) (*Program, PlanStats, error) {
	start := time.Now()
	var stats PlanStats
	if !shape.Valid() {
		return nil, stats, fmt.Errorf("poly: invalid shape %v", shape)
	}
	if p.Lib == nil || len(p.Lib.Kernels) == 0 {
		return nil, stats, fmt.Errorf("poly: empty micro-kernel library")
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, fmt.Errorf("poly: planning aborted: %w", err)
	}
	ctx, sp := p.Trace.Start(ctx, "poly.plan")
	defer func() {
		sp.Attr("m", float64(shape.M)).Attr("n", float64(shape.N)).Attr("k", float64(shape.K))
		sp.Attr("candidates", float64(stats.Candidates)).Attr("pruned", float64(stats.PrunedAnchors))
		sp.End()
	}()

	var best *Program
	var err error
	switch {
	case p.Cost == CostOracle:
		best, err = p.planOracle(ctx, shape, &stats)
	case p.Workers > 1:
		best, err = p.planParallel(ctx, shape, &stats)
	default:
		best, err = p.planSequential(ctx, shape, &stats)
	}
	if err != nil {
		return nil, stats, err
	}
	if best == nil {
		return nil, stats, fmt.Errorf("poly: no candidate programs for %v", shape)
	}
	_, vsp := p.Trace.Start(ctx, "poly.validate")
	err = best.Validate()
	vsp.End()
	if err != nil {
		return nil, stats, fmt.Errorf("poly: planned program invalid: %w", err)
	}
	best.HW = p.Lib.HW
	stats.Elapsed = time.Since(start)
	return best, stats, nil
}

// planSequential is the default online search: one pass over the pattern ×
// anchor × boundary space, scoring candidates in place and materializing only
// the winner.
func (p *Planner) planSequential(ctx context.Context, shape tensor.GemmShape, stats *PlanStats) (*Program, error) {
	sc := getScratch()
	defer putScratch(sc)
	pipe := p.pipeTable(sc, shape.K)
	pes := p.Lib.HW.NumPEs

	var win winner
	for _, pat := range p.patterns() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("poly: planning aborted: %w", err)
		}
		// One strategy-search span per pattern enumeration; a span cut
		// short by cancellation is simply never recorded.
		_, psp := p.Trace.Start(ctx, patternSpanName(pat))
		before := stats.Candidates
		for ai := range p.Lib.Kernels {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("poly: planning aborted: %w", err)
			}
			// Branch-and-bound: if the anchor's best possible main
			// region alone already exceeds the current best program,
			// every strategy built on this anchor loses too (§3.5).
			if !p.DisablePruning && win.valid && pat != PatternI {
				if p.anchorLowerBoundAt(pipe, ai) >= win.cost {
					stats.PrunedAnchors++
					continue
				}
			}
			for ci, geoms := range p.skeletons(pat, shape, ai) {
				total := p.evalCandidate(pipe, geoms, ai, pat != PatternI, pes)
				stats.Candidates++
				if !win.valid || total < win.cost {
					win = winner{valid: true, cost: total, pat: pat, anchorIdx: ai, candIdx: ci}
				}
			}
			if pat == PatternI {
				// Pattern I ignores the anchor beyond region kernel
				// choice; a single argmin pass covers all kernels.
				break
			}
		}
		psp.Attr("candidates", float64(stats.Candidates-before)).End()
	}

	if p.EnableSplitK {
		_, ksp := p.Trace.Start(ctx, "poly.pattern.split-K")
		before := stats.Candidates
		p.evalSplitK(shape, stats, &win)
		ksp.Attr("candidates", float64(stats.Candidates-before)).End()
	}
	if !win.valid {
		return nil, nil
	}
	return p.buildWinner(pipe, shape, win), nil
}

// anchorLowerBoundAt is an optimistic cost for any program whose primary
// region uses anchor i: at least one wave of one pipelined task with a single
// reduction instance.
func (p *Planner) anchorLowerBoundAt(pipe []float64, i int) float64 {
	if p.Cost == CostWaveOnly {
		return 1
	}
	return pipe[i]
}

// anchorLowerBound is the kernel-keyed form of anchorLowerBoundAt, kept for
// the oracle path and tests.
func (p *Planner) anchorLowerBound(shape tensor.GemmShape, anchor kernel.MicroKernel) float64 {
	if p.Cost == CostWaveOnly {
		return 1
	}
	t3 := (shape.K + anchor.UK - 1) / anchor.UK
	return p.Lib.PredictTask(anchor, t3)
}

// splitKFactors is the reduction-split fan the split-K extension explores.
var splitKFactors = [...]int{2, 4, 8, 16, 32}

// evalSplitK scores PatternSplitK candidates against the current winner
// without materializing programs: the full output computed ks times over
// contiguous reduction slices. Splitting only helps when the output-plane
// grid underfills the device, so candidates are generated only while the
// split grid still gains occupancy.
func (p *Planner) evalSplitK(shape tensor.GemmShape, stats *PlanStats, win *winner) {
	pes := p.Lib.HW.NumPEs
	for ki := range p.Lib.Kernels {
		k := &p.Lib.Kernels[ki]
		baseTasks := ((shape.M + k.UM - 1) / k.UM) * ((shape.N + k.UN - 1) / k.UN)
		if baseTasks >= pes {
			continue // already a full wave; splitting only adds traffic
		}
		for _, ks := range splitKFactors {
			if (ks-1)*baseTasks >= pes || ks > shape.K {
				break
			}
			cost := p.splitKEval(ki, ks, baseTasks, shape)
			stats.Candidates++
			if !win.valid || cost < win.cost {
				*win = winner{valid: true, cost: cost, pat: PatternSplitK, anchorIdx: ki, candIdx: ks}
			}
		}
	}
}

// splitKEval scores one (kernel, split-count) split-K candidate. Unlike
// output-plane regions, split-K slices co-run over the same output, so the
// wave term covers the combined grid rather than summing per-region waves.
func (p *Planner) splitKEval(ki, ks, baseTasks int, shape tensor.GemmShape) float64 {
	k := &p.Lib.Kernels[ki]
	total := 0
	maxPipe := 0.0
	for i := 0; i < ks; i++ {
		k0 := i * shape.K / ks
		k1 := (i + 1) * shape.K / ks
		total += baseTasks
		t3 := (k1 - k0 + k.UK - 1) / k.UK
		if c := p.Lib.PredictAt(ki, t3); c > maxPipe {
			maxPipe = c
		}
	}
	waves := WaveCount(total, p.Lib.HW.NumPEs)
	switch p.Cost {
	case CostWaveOnly:
		return waves
	case CostPipeOnly:
		return maxPipe
	default:
		return waves * maxPipe
	}
}

// splitKCandidates builds PatternSplitK programs for the oracle path, which
// must simulate every candidate and therefore needs them materialized.
func (p *Planner) splitKCandidates(shape tensor.GemmShape) []*Program {
	var out []*Program
	pes := p.Lib.HW.NumPEs
	for ki := range p.Lib.Kernels {
		k := p.Lib.Kernels[ki]
		baseTasks := ((shape.M + k.UM - 1) / k.UM) * ((shape.N + k.UN - 1) / k.UN)
		if baseTasks >= pes {
			continue
		}
		for _, ks := range splitKFactors {
			if (ks-1)*baseTasks >= pes || ks > shape.K {
				break
			}
			out = append(out, p.buildSplitK(shape, ki, ks))
		}
	}
	return out
}

// buildSplitK materializes the (kernel, split-count) split-K program.
func (p *Planner) buildSplitK(shape tensor.GemmShape, ki, ks int) *Program {
	k := p.Lib.Kernels[ki]
	prog := &Program{Shape: shape, Pattern: PatternSplitK, Regions: make([]Region, 0, ks)}
	for i := 0; i < ks; i++ {
		k0 := i * shape.K / ks
		k1 := (i + 1) * shape.K / ks
		prog.Regions = append(prog.Regions, Region{
			M0: 0, N0: 0, M: shape.M, N: shape.N,
			KOff: k0, K: k1 - k0, Kern: k,
		})
	}
	return prog
}

// splitKCost scores a materialized split-K program (oracle path and tests).
func (p *Planner) splitKCost(prog *Program) float64 {
	total := 0
	maxPipe := 0.0
	for _, r := range prog.Regions {
		total += r.Tasks()
		_, _, t3 := r.Tiles()
		if c := p.Lib.PredictTask(r.Kern, t3); c > maxPipe {
			maxPipe = c
		}
	}
	waves := WaveCount(total, p.Lib.HW.NumPEs)
	switch p.Cost {
	case CostWaveOnly:
		return waves
	case CostPipeOnly:
		return maxPipe
	default:
		return waves * maxPipe
	}
}

// PlanPatternI builds the best single-kernel program — the structure every
// baseline library routine uses, and the comparison point of the case study.
func (p *Planner) PlanPatternI(shape tensor.GemmShape) (*Program, error) {
	saved := p.Patterns
	p.Patterns = []PatternID{PatternI}
	prog, _, err := p.Plan(shape)
	p.Patterns = saved
	return prog, err
}
