package poly

import (
	"context"
	"fmt"
	"math"
	"time"

	"mikpoly/internal/hw"
	"mikpoly/internal/kernel"
	"mikpoly/internal/obs"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// CostModel selects how candidate programs are scored. The variants other
// than CostFull exist for the ablation of Fig. 12(b).
type CostModel int

const (
	// CostFull is the paper's model, Eq. 2: Σ_i f_wave × f_pipe.
	CostFull CostModel = iota
	// CostWaveOnly scores by Σ_i f_wave alone (MikPoly-Wave): it chases
	// minimal wave counts and therefore over-selects large micro-kernels.
	CostWaveOnly
	// CostPipeOnly scores by Σ_i f_pipe alone (MikPoly-Pipe): it chases
	// the cheapest single pipelined task and over-selects small kernels.
	CostPipeOnly
	// CostOracle simulates every candidate program on the substrate and
	// picks the true optimum (MikPoly-Oracle) — far too slow for runtime
	// use (§5.3.2) but the reference point for cost-model quality.
	CostOracle
)

func (c CostModel) String() string {
	switch c {
	case CostFull:
		return "full"
	case CostWaveOnly:
		return "wave-only"
	case CostPipeOnly:
		return "pipe-only"
	case CostOracle:
		return "oracle"
	default:
		return fmt.Sprintf("CostModel(%d)", int(c))
	}
}

// PlanStats reports what the online search did — the polymerization overhead
// of Fig. 12(a).
type PlanStats struct {
	// Candidates is the number of fully costed candidate programs.
	Candidates int
	// PrunedAnchors counts anchor kernels skipped by branch-and-bound.
	PrunedAnchors int
	// Elapsed is the wall-clock planning time of this Go implementation.
	Elapsed time.Duration
}

// OnlineCostPerCandidate is the modeled per-candidate cost, in device-clock
// cycles, of the paper's optimized C++ runtime evaluating one polymerization
// strategy (a handful of integer divisions plus a piecewise-linear lookup —
// ~7 ns). End-to-end latencies charge MikPoly this modeled overhead rather
// than this Go process's wall-clock, which measures the wrong
// implementation; Fig. 12(a) reports both.
const OnlineCostPerCandidate = 10.0

// ModeledOverheadCycles is the deployed-runtime estimate of the online
// stage's cost for this plan.
func (st PlanStats) ModeledOverheadCycles() float64 {
	return float64(st.Candidates) * OnlineCostPerCandidate
}

// Planner performs on-the-fly micro-kernel polymerization against an offline
// library.
type Planner struct {
	// Lib is the offline-stage output (kernels + g_predict models).
	Lib *tune.Library

	// Patterns is the pattern subset to explore; nil selects the platform
	// default (GPU: I–II, NPU: I–IX) from the library's hardware.
	Patterns []PatternID

	// Cost selects the scoring model (default CostFull).
	Cost CostModel

	// DisablePruning turns off the branch-and-bound anchor skip, for the
	// online-overhead ablation.
	DisablePruning bool

	// EnableSplitK adds reduction-dimension splitting (PatternSplitK) to
	// the search — an extension beyond the paper's output-plane patterns
	// for skinny outputs with deep reductions.
	EnableSplitK bool

	// Trace, when non-nil and enabled, records hierarchical spans for the
	// search (poly.plan → per-pattern enumeration → validate). It never
	// affects which program is chosen.
	Trace *obs.Tracer
}

// NewPlanner returns a planner with the platform-default pattern set.
func NewPlanner(lib *tune.Library) *Planner { return &Planner{Lib: lib} }

func (p *Planner) patterns() []PatternID {
	if p.Patterns != nil {
		return p.Patterns
	}
	if p.Lib.HW.Scheduler == hw.ScheduleStaticMaxMin {
		return NPUPatterns()
	}
	return GPUPatterns()
}

// regionCost evaluates one (R_i, K̃_i) term of Eq. 2 under the active cost
// model: f_wave = WaveCount(f_parallel, |P_multi|), f_pipe = g_predict(f_num).
func (p *Planner) regionCost(r Region) float64 {
	t1, t2, t3 := r.Tiles()
	waves := WaveCount(t1*t2, p.Lib.HW.NumPEs)
	switch p.Cost {
	case CostWaveOnly:
		return waves
	case CostPipeOnly:
		return p.Lib.PredictTask(r.Kern, t3)
	default:
		return waves * p.Lib.PredictTask(r.Kern, t3)
	}
}

// bestKernelFor picks the library kernel minimizing the region cost — exact
// for Eq. 2 because region terms are independent given boundaries.
func (p *Planner) bestKernelFor(geom rect, K int) (Region, float64) {
	best := Region{}
	bestCost := math.Inf(1)
	for _, k := range p.Lib.Kernels {
		r := Region{M0: geom.m0, N0: geom.n0, M: geom.m, N: geom.n, K: K, Kern: k}
		if c := p.regionCost(r); c < bestCost {
			bestCost = c
			best = r
		}
	}
	return best, bestCost
}

// Plan produces the optimized tensor program S* for the runtime shape
// (Algorithm 1, On-the-Fly Polymerization).
func (p *Planner) Plan(shape tensor.GemmShape) (*Program, PlanStats, error) {
	return p.PlanContext(context.Background(), shape)
}

// PlanContext is Plan with cooperative cancellation: the search checks ctx
// between anchor kernels and aborts with ctx's error once it is done, so a
// serving layer can impose a planning deadline and fall back to the
// always-legal single-kernel program (FallbackProgram) instead of blocking.
func (p *Planner) PlanContext(ctx context.Context, shape tensor.GemmShape) (*Program, PlanStats, error) {
	start := time.Now()
	var stats PlanStats
	if !shape.Valid() {
		return nil, stats, fmt.Errorf("poly: invalid shape %v", shape)
	}
	if p.Lib == nil || len(p.Lib.Kernels) == 0 {
		return nil, stats, fmt.Errorf("poly: empty micro-kernel library")
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, fmt.Errorf("poly: planning aborted: %w", err)
	}
	ctx, sp := p.Trace.Start(ctx, "poly.plan")
	defer func() {
		sp.Attr("m", float64(shape.M)).Attr("n", float64(shape.N)).Attr("k", float64(shape.K))
		sp.Attr("candidates", float64(stats.Candidates)).Attr("pruned", float64(stats.PrunedAnchors))
		sp.End()
	}()

	var best *Program
	bestCost := math.Inf(1)
	consider := func(prog *Program, cost float64) {
		stats.Candidates++
		if cost < bestCost {
			bestCost = cost
			best = prog
		}
	}

	for _, pat := range p.patterns() {
		if err := ctx.Err(); err != nil {
			return nil, stats, fmt.Errorf("poly: planning aborted: %w", err)
		}
		// One strategy-search span per pattern enumeration; a span cut
		// short by cancellation is simply never recorded.
		_, psp := p.Trace.Start(ctx, "poly.pattern."+pat.String())
		before := stats.Candidates
		for _, anchor := range p.Lib.Kernels {
			if err := ctx.Err(); err != nil {
				return nil, stats, fmt.Errorf("poly: planning aborted: %w", err)
			}
			// Branch-and-bound: if the anchor's best possible main
			// region alone already exceeds the current best program,
			// every strategy built on this anchor loses too (§3.5).
			// Oracle mode never prunes: its score scale (simulated
			// cycles) is not comparable to the bound.
			if !p.DisablePruning && p.Cost != CostOracle && best != nil && pat != PatternI {
				lower := p.anchorLowerBound(shape, anchor)
				if lower >= bestCost {
					stats.PrunedAnchors++
					continue
				}
			}
			for _, geoms := range boundaryCandidates(pat, shape.M, shape.N, anchor, p.Lib.HW.NumPEs) {
				prog := &Program{Shape: shape, Pattern: pat}
				total := 0.0
				for gi, g := range geoms {
					var reg Region
					var c float64
					anchored := gi == 0 && pat != PatternI
					if p.Cost == CostOracle && gi == 0 {
						// Oracle enumerates the primary kernel explicitly
						// even for Pattern I, so every single-kernel
						// program is simulated.
						anchored = true
					}
					if anchored {
						// The primary region is anchored: its boundary
						// was derived from this kernel's tile.
						reg = Region{M0: g.m0, N0: g.n0, M: g.m, N: g.n, K: shape.K, Kern: anchor}
						c = p.regionCost(reg)
					} else {
						reg, c = p.bestKernelFor(g, shape.K)
					}
					prog.Regions = append(prog.Regions, reg)
					total += c
				}
				if p.Cost == CostOracle {
					total = prog.Simulate(p.Lib.HW).Cycles
				}
				prog.EstimatedCost = total
				consider(prog, total)
			}
			if pat == PatternI && p.Cost != CostOracle {
				// Pattern I ignores the anchor beyond region kernel
				// choice; a single argmin pass covers all kernels.
				break
			}
		}
		psp.Attr("candidates", float64(stats.Candidates-before)).End()
	}

	if p.EnableSplitK {
		_, ksp := p.Trace.Start(ctx, "poly.pattern."+PatternSplitK.String())
		before := stats.Candidates
		for _, prog := range p.splitKCandidates(shape) {
			cost := p.splitKCost(prog)
			if p.Cost == CostOracle {
				cost = prog.Simulate(p.Lib.HW).Cycles
			}
			prog.EstimatedCost = cost
			consider(prog, cost)
		}
		ksp.Attr("candidates", float64(stats.Candidates-before)).End()
	}

	if best == nil {
		return nil, stats, fmt.Errorf("poly: no candidate programs for %v", shape)
	}
	_, vsp := p.Trace.Start(ctx, "poly.validate")
	err := best.Validate()
	vsp.End()
	if err != nil {
		return nil, stats, fmt.Errorf("poly: planned program invalid: %w", err)
	}
	best.HW = p.Lib.HW
	stats.Elapsed = time.Since(start)
	return best, stats, nil
}

// anchorLowerBound is an optimistic cost for any program whose primary
// region uses the anchor kernel: at least one wave of one pipelined task
// with a single reduction instance.
func (p *Planner) anchorLowerBound(shape tensor.GemmShape, anchor kernel.MicroKernel) float64 {
	if p.Cost == CostWaveOnly {
		return 1
	}
	t3 := (shape.K + anchor.UK - 1) / anchor.UK
	return p.Lib.PredictTask(anchor, t3)
}

// splitKCandidates builds PatternSplitK programs: the full output computed
// ks times over contiguous reduction slices, with partial products
// accumulated into the shared output. Splitting only helps when the
// output-plane grid underfills the device, so candidates are generated only
// while the split grid still gains occupancy.
func (p *Planner) splitKCandidates(shape tensor.GemmShape) []*Program {
	var out []*Program
	pes := p.Lib.HW.NumPEs
	for _, k := range p.Lib.Kernels {
		baseTasks := ((shape.M + k.UM - 1) / k.UM) * ((shape.N + k.UN - 1) / k.UN)
		if baseTasks >= pes {
			continue // already a full wave; splitting only adds traffic
		}
		for _, ks := range []int{2, 4, 8, 16, 32} {
			if (ks-1)*baseTasks >= pes || ks > shape.K {
				break
			}
			prog := &Program{Shape: shape, Pattern: PatternSplitK}
			for i := 0; i < ks; i++ {
				k0 := i * shape.K / ks
				k1 := (i + 1) * shape.K / ks
				prog.Regions = append(prog.Regions, Region{
					M0: 0, N0: 0, M: shape.M, N: shape.N,
					KOff: k0, K: k1 - k0, Kern: k,
				})
			}
			out = append(out, prog)
		}
	}
	return out
}

// splitKCost scores a split-K program. Unlike output-plane regions, split-K
// slices co-run over the same output, so the wave term covers the combined
// grid rather than summing per-region waves.
func (p *Planner) splitKCost(prog *Program) float64 {
	total := 0
	maxPipe := 0.0
	for _, r := range prog.Regions {
		total += r.Tasks()
		_, _, t3 := r.Tiles()
		if c := p.Lib.PredictTask(r.Kern, t3); c > maxPipe {
			maxPipe = c
		}
	}
	waves := WaveCount(total, p.Lib.HW.NumPEs)
	switch p.Cost {
	case CostWaveOnly:
		return waves
	case CostPipeOnly:
		return maxPipe
	default:
		return waves * maxPipe
	}
}

// PlanPatternI builds the best single-kernel program — the structure every
// baseline library routine uses, and the comparison point of the case study.
func (p *Planner) PlanPatternI(shape tensor.GemmShape) (*Program, error) {
	saved := p.Patterns
	p.Patterns = []PatternID{PatternI}
	prog, _, err := p.Plan(shape)
	p.Patterns = saved
	return prog, err
}
