package poly

import (
	"context"
	"errors"
	"testing"

	"mikpoly/internal/hw"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

func fallbackTestLib(t *testing.T) *tune.Library {
	t.Helper()
	lib, err := tune.Generate(hw.A100(), tune.Options{NGen: 4, NSyn: 6, NMik: 6, NPred: 128})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestFallbackProgramAlwaysLegal(t *testing.T) {
	lib := fallbackTestLib(t)
	for _, s := range []tensor.GemmShape{
		{M: 1, N: 1, K: 1},
		{M: 7, N: 13, K: 3},
		{M: 4096, N: 1024, K: 4096},
		{M: 37, N: 768, K: 768},
	} {
		prog, err := FallbackProgram(lib, s)
		if err != nil {
			t.Fatalf("fallback for %v: %v", s, err)
		}
		if prog.Pattern != PatternI || len(prog.Regions) != 1 {
			t.Fatalf("fallback for %v is not a single-kernel Pattern-I program: %v", s, prog)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("fallback for %v invalid: %v", s, err)
		}
	}
}

func TestFallbackProgramErrors(t *testing.T) {
	lib := fallbackTestLib(t)
	if _, err := FallbackProgram(lib, tensor.GemmShape{M: -1, N: 2, K: 3}); err == nil {
		t.Fatal("invalid shape accepted")
	}
	if _, err := FallbackProgram(nil, tensor.GemmShape{M: 1, N: 1, K: 1}); err == nil {
		t.Fatal("nil library accepted")
	}
	empty := &tune.Library{HW: lib.HW}
	if _, err := FallbackProgram(empty, tensor.GemmShape{M: 1, N: 1, K: 1}); err == nil {
		t.Fatal("empty library accepted")
	}
}

func TestPlanContextHonorsDeadline(t *testing.T) {
	lib := fallbackTestLib(t)
	p := NewPlanner(lib)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := p.PlanContext(ctx, tensor.GemmShape{M: 512, N: 512, K: 512})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	// A live context still plans.
	prog, _, err := p.PlanContext(context.Background(), tensor.GemmShape{M: 512, N: 512, K: 512})
	if err != nil || prog == nil {
		t.Fatalf("live context failed: %v", err)
	}
}
