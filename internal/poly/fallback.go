package poly

import (
	"fmt"
	"math"

	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// FallbackProgram builds the always-legal single-kernel program for a shape:
// one Pattern-I region covering the whole output, computed with whichever
// library kernel wastes the least local padding. Because local padding (§3.4)
// rounds the iteration space up to the kernel tile grid, this program is
// valid for every positive shape — it is the graceful-degradation path the
// serving layer emits when full polymerization fails, panics, or exceeds its
// deadline. It runs no search and consults no cost model, so it is O(|lib|)
// and cannot itself time out.
func FallbackProgram(lib *tune.Library, shape tensor.GemmShape) (*Program, error) {
	if !shape.Valid() {
		return nil, fmt.Errorf("poly: invalid shape %v", shape)
	}
	if lib == nil || len(lib.Kernels) == 0 {
		return nil, fmt.Errorf("poly: empty micro-kernel library")
	}
	best := lib.Kernels[0]
	bestVol := paddedVolume(shape, best.UM, best.UN, best.UK)
	for _, k := range lib.Kernels[1:] {
		if v := paddedVolume(shape, k.UM, k.UN, k.UK); v < bestVol {
			bestVol, best = v, k
		}
	}
	prog := &Program{
		Shape:   shape,
		Pattern: PatternI,
		Regions: []Region{{M0: 0, N0: 0, M: shape.M, N: shape.N, K: shape.K, Kern: best}},
		HW:      lib.HW,
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("poly: fallback program invalid: %w", err)
	}
	return prog, nil
}

// paddedVolume is the iteration-space volume after rounding each dimension up
// to the kernel tile, in float64 so huge shapes cannot overflow.
func paddedVolume(s tensor.GemmShape, um, un, uk int) float64 {
	if um <= 0 || un <= 0 || uk <= 0 {
		return math.Inf(1)
	}
	ceil := func(x, u int) float64 { return float64((x + u - 1) / u * u) }
	return ceil(s.M, um) * ceil(s.N, un) * ceil(s.K, uk)
}
