package poly

import (
	"context"
	"fmt"

	"mikpoly/internal/tensor"
)

// planOracle is the CostOracle search: every candidate program is
// materialized and simulated on the substrate — the reference point for
// cost-model quality, far too slow for runtime use (§5.3.2). It never prunes
// (its score scale is simulated cycles, not comparable to the cost-model
// bound) and is exempt from the allocation-free fast path by design.
func (p *Planner) planOracle(ctx context.Context, shape tensor.GemmShape, stats *PlanStats) (*Program, error) {
	var best *Program
	bestCost := 0.0
	consider := func(prog *Program, cost float64) {
		stats.Candidates++
		if best == nil || cost < bestCost {
			bestCost = cost
			best = prog
		}
	}

	for _, pat := range p.patterns() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("poly: planning aborted: %w", err)
		}
		_, psp := p.Trace.Start(ctx, patternSpanName(pat))
		before := stats.Candidates
		for _, anchor := range p.Lib.Kernels {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("poly: planning aborted: %w", err)
			}
			for _, geoms := range cachedBoundaryCandidates(pat, shape.M, shape.N, anchor, p.Lib.HW.NumPEs) {
				prog := &Program{Shape: shape, Pattern: pat}
				for gi, g := range geoms {
					var reg Region
					// The oracle enumerates the primary kernel explicitly
					// even for Pattern I, so every single-kernel program
					// is simulated.
					if gi == 0 {
						reg = Region{M0: g.m0, N0: g.n0, M: g.m, N: g.n, K: shape.K, Kern: anchor}
					} else {
						reg, _ = p.bestKernelFor(g, shape.K)
					}
					prog.Regions = append(prog.Regions, reg)
				}
				total := prog.Simulate(p.Lib.HW).Cycles
				prog.EstimatedCost = total
				consider(prog, total)
			}
		}
		psp.Attr("candidates", float64(stats.Candidates-before)).End()
	}

	if p.EnableSplitK {
		_, ksp := p.Trace.Start(ctx, "poly.pattern.split-K")
		before := stats.Candidates
		for _, prog := range p.splitKCandidates(shape) {
			cost := prog.Simulate(p.Lib.HW).Cycles
			prog.EstimatedCost = cost
			consider(prog, cost)
		}
		ksp.Attr("candidates", float64(stats.Candidates-before)).End()
	}
	return best, nil
}
