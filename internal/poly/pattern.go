package poly

import (
	"fmt"

	"mikpoly/internal/kernel"
)

// PatternID names the nine representative polymerization patterns retained
// from the seven-block skeleton of Fig. 5(b). Pattern I keeps the template
// intact (one region); the others split the output space so that each region
// can be served by a differently sized micro-kernel, isolating ragged edges
// and balancing the final wave.
//
// On GPUs only Patterns I and II are used (§4: the dynamic hardware
// scheduler makes finer splits rarely profitable and online time is at a
// premium); on NPUs all nine are explored.
type PatternID int

const (
	// PatternI: one region covering the whole output.
	PatternI PatternID = iota + 1
	// PatternII: horizontal split — top band + bottom band (the pattern
	// of the paper's running example and case study).
	PatternII
	// PatternIII: vertical split — left band + right band.
	PatternIII
	// PatternIV: horizontal split, bottom band split vertically.
	PatternIV
	// PatternV: vertical split, right band split horizontally.
	PatternV
	// PatternVI: 2×2 grid — main block, right edge, bottom edge, corner.
	PatternVI
	// PatternVII: three horizontal bands.
	PatternVII
	// PatternVIII: three vertical bands.
	PatternVIII
	// PatternIX: horizontal split, bottom band split into three columns.
	PatternIX
	// PatternSplitK slices the reduction dimension instead of the output
	// plane, restoring parallelism for skinny outputs with deep
	// reductions (e.g. Fig. 1's (105, 1024, 12544)). This is an extension
	// beyond the paper's nine output-plane patterns; enable it with
	// Planner.EnableSplitK.
	PatternSplitK
	// PatternChain marks a fused multi-stage program: every region is a
	// full-width row band carrying a chain of GEMM stages whose
	// intermediates stay in M_local (see chain.go). Produced only by
	// Planner.PlanChain, never by the single-op pattern search.
	PatternChain
)

// gpuPatternSet and npuPatternSet are the platform-default pattern lists the
// planner iterates directly; the exported accessors return copies so callers
// cannot mutate the defaults out from under the hot path.
var (
	gpuPatternSet = []PatternID{PatternI, PatternII}
	npuPatternSet = []PatternID{
		PatternI, PatternII, PatternIII, PatternIV, PatternV,
		PatternVI, PatternVII, PatternVIII, PatternIX,
	}
)

// GPUPatterns is the pattern subset used on dynamically scheduled devices.
func GPUPatterns() []PatternID { return append([]PatternID(nil), gpuPatternSet...) }

// NPUPatterns is the full pattern set used on statically scheduled devices.
func NPUPatterns() []PatternID { return append([]PatternID(nil), npuPatternSet...) }

func (p PatternID) String() string {
	switch p {
	case PatternI:
		return "I"
	case PatternII:
		return "II"
	case PatternIII:
		return "III"
	case PatternIV:
		return "IV"
	case PatternV:
		return "V"
	case PatternVI:
		return "VI"
	case PatternVII:
		return "VII"
	case PatternVIII:
		return "VIII"
	case PatternIX:
		return "IX"
	case PatternSplitK:
		return "split-K"
	case PatternChain:
		return "chain"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// patternSpanName returns the trace-span name for a pattern enumeration
// without concatenating strings on the hot path.
func patternSpanName(p PatternID) string {
	switch p {
	case PatternI:
		return "poly.pattern.I"
	case PatternII:
		return "poly.pattern.II"
	case PatternIII:
		return "poly.pattern.III"
	case PatternIV:
		return "poly.pattern.IV"
	case PatternV:
		return "poly.pattern.V"
	case PatternVI:
		return "poly.pattern.VI"
	case PatternVII:
		return "poly.pattern.VII"
	case PatternVIII:
		return "poly.pattern.VIII"
	case PatternIX:
		return "poly.pattern.IX"
	default:
		return "poly.pattern." + p.String()
	}
}

// rect is a candidate region geometry before kernel assignment.
type rect struct{ m0, n0, m, n int }

// roundDown returns the largest multiple of align not exceeding n.
func roundDown(n, align int) int {
	if align <= 0 {
		return n
	}
	return n / align * align
}

// tileGrid is the granularity all secondary split points snap to; every
// generated micro-kernel tile is a multiple of it.
const tileGrid = 16

// splitPointsM returns the candidate first-split rows for anchor kernel a:
// the maximal a-aligned prefix plus the wave-aligned prefixes, i.e. row
// counts whose task count fills an integral number of waves on numPEs PEs —
// the choice that removes the underfull last wave of the case study (§6).
func splitPointsM(M, N int, a kernel.MicroKernel, numPEs int) []int {
	t1max := M / a.UM
	if t1max < 1 {
		return nil
	}
	t2 := (N + a.UN - 1) / a.UN
	seen := map[int]bool{}
	var out []int
	add := func(t1 int) {
		if t1 < 1 || t1 > t1max {
			return
		}
		mA := t1 * a.UM
		if mA >= M {
			// Full coverage degenerates to Pattern I unless a ragged
			// remainder exists.
			if M%a.UM == 0 {
				return
			}
			mA = t1max * a.UM
		}
		if !seen[mA] {
			seen[mA] = true
			out = append(out, mA)
		}
	}
	add(t1max)
	maxWaves := (t1max*t2 + numPEs - 1) / numPEs
	for w := 1; w <= maxWaves && w <= 8; w++ {
		add(w * numPEs / t2)
	}
	return out
}

// splitPointsN mirrors splitPointsM for vertical splits.
func splitPointsN(M, N int, a kernel.MicroKernel, numPEs int) []int {
	t2max := N / a.UN
	if t2max < 1 {
		return nil
	}
	t1 := (M + a.UM - 1) / a.UM
	seen := map[int]bool{}
	var out []int
	add := func(t2 int) {
		if t2 < 1 || t2 > t2max {
			return
		}
		nA := t2 * a.UN
		if nA >= N {
			if N%a.UN == 0 {
				return
			}
			nA = t2max * a.UN
		}
		if !seen[nA] {
			seen[nA] = true
			out = append(out, nA)
		}
	}
	add(t2max)
	maxWaves := (t2max*t1 + numPEs - 1) / numPEs
	for w := 1; w <= maxWaves && w <= 8; w++ {
		add(w * numPEs / t1)
	}
	return out
}

// dropEmpty filters zero-area rects; a candidate with no rects left is
// meaningless and the caller skips it.
func dropEmpty(rs []rect) []rect {
	out := rs[:0]
	for _, r := range rs {
		if r.m > 0 && r.n > 0 {
			out = append(out, r)
		}
	}
	return out
}

// boundaryCandidates enumerates the region geometries a pattern yields for
// the given shape and anchor kernel. The anchor sizes the primary split; the
// secondary splits snap to the 16-wide tile grid so that any library kernel
// can serve the remaining regions.
func boundaryCandidates(pat PatternID, M, N int, anchor kernel.MicroKernel, numPEs int) [][]rect {
	var out [][]rect
	switch pat {
	case PatternI:
		out = append(out, []rect{{0, 0, M, N}})

	case PatternII:
		for _, mA := range splitPointsM(M, N, anchor, numPEs) {
			out = append(out, dropEmpty([]rect{
				{0, 0, mA, N},
				{mA, 0, M - mA, N},
			}))
		}

	case PatternIII:
		for _, nA := range splitPointsN(M, N, anchor, numPEs) {
			out = append(out, dropEmpty([]rect{
				{0, 0, M, nA},
				{0, nA, M, N - nA},
			}))
		}

	case PatternIV:
		nSplit := roundDown(N, max(anchor.UN, tileGrid))
		if nSplit <= 0 || nSplit >= N {
			nSplit = roundDown(N/2, tileGrid)
		}
		for _, mA := range splitPointsM(M, N, anchor, numPEs) {
			out = append(out, dropEmpty([]rect{
				{0, 0, mA, N},
				{mA, 0, M - mA, nSplit},
				{mA, nSplit, M - mA, N - nSplit},
			}))
		}

	case PatternV:
		mSplit := roundDown(M, max(anchor.UM, tileGrid))
		if mSplit <= 0 || mSplit >= M {
			mSplit = roundDown(M/2, tileGrid)
		}
		for _, nA := range splitPointsN(M, N, anchor, numPEs) {
			out = append(out, dropEmpty([]rect{
				{0, 0, M, nA},
				{0, nA, mSplit, N - nA},
				{mSplit, nA, M - mSplit, N - nA},
			}))
		}

	case PatternVI:
		nA := roundDown(N, anchor.UN)
		if nA <= 0 || nA >= N {
			return nil // no ragged right edge: covered by II
		}
		for _, mA := range splitPointsM(M, nA, anchor, numPEs) {
			out = append(out, dropEmpty([]rect{
				{0, 0, mA, nA},
				{0, nA, mA, N - nA},
				{mA, 0, M - mA, nA},
				{mA, nA, M - mA, N - nA},
			}))
		}

	case PatternVII:
		for _, mA := range splitPointsM(M, N, anchor, numPEs) {
			rest := M - mA
			mB := roundDown(rest/2, tileGrid)
			out = append(out, dropEmpty([]rect{
				{0, 0, mA, N},
				{mA, 0, mB, N},
				{mA + mB, 0, rest - mB, N},
			}))
		}

	case PatternVIII:
		for _, nA := range splitPointsN(M, N, anchor, numPEs) {
			rest := N - nA
			nB := roundDown(rest/2, tileGrid)
			out = append(out, dropEmpty([]rect{
				{0, 0, M, nA},
				{0, nA, M, nB},
				{0, nA + nB, M, rest - nB},
			}))
		}

	case PatternIX:
		for _, mA := range splitPointsM(M, N, anchor, numPEs) {
			rest := M - mA
			n1 := roundDown(N/3, tileGrid)
			n2 := roundDown(2*N/3, tileGrid)
			if n1 <= 0 || n2 <= n1 || n2 >= N {
				continue
			}
			out = append(out, dropEmpty([]rect{
				{0, 0, mA, N},
				{mA, 0, rest, n1},
				{mA, n1, rest, n2 - n1},
				{mA, n2, rest, N - n2},
			}))
		}
	}

	// Drop candidates that lost all regions.
	kept := out[:0]
	for _, rs := range out {
		if len(rs) > 0 {
			kept = append(kept, rs)
		}
	}
	return kept
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
