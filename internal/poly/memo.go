package poly

import (
	"sync"

	"mikpoly/internal/kernel"
)

// skelKey identifies one memoized skeleton enumeration. Boundaries depend
// only on the output-plane extents, the anchor's output tile (uK never moves
// a split point) and the PE count — so kernels differing only in uK or
// schedule share an entry, and a shape bucket seen once is free for every
// later plan on any planner.
type skelKey struct {
	pat    PatternID
	um, un int
	m, n   int
	pes    int
}

// skelCacheCap bounds the memo so an unbounded shape stream cannot grow it
// without limit; on overflow the map is reset (entries are derived state and
// deterministically recomputable).
const skelCacheCap = 8192

var (
	skelMu    sync.RWMutex
	skelCache = make(map[skelKey][][]rect)
)

// cachedBoundaryCandidates is boundaryCandidates behind the skeleton memo.
// The returned slices are shared across plans and goroutines and must be
// treated as immutable.
func cachedBoundaryCandidates(pat PatternID, M, N int, anchor kernel.MicroKernel, pes int) [][]rect {
	key := skelKey{pat: pat, um: anchor.UM, un: anchor.UN, m: M, n: N, pes: pes}
	skelMu.RLock()
	v, ok := skelCache[key]
	skelMu.RUnlock()
	if ok {
		return v
	}
	v = boundaryCandidates(pat, M, N, anchor, pes)
	skelMu.Lock()
	if len(skelCache) >= skelCacheCap {
		skelCache = make(map[skelKey][][]rect, skelCacheCap/4)
	}
	skelCache[key] = v
	skelMu.Unlock()
	return v
}

// skelCacheLen reports the memo population (tests and diagnostics).
func skelCacheLen() int {
	skelMu.RLock()
	defer skelMu.RUnlock()
	return len(skelCache)
}
