package winograd

import (
	"testing"
	"testing/quick"

	"mikpoly/internal/tensor"
)

func TestApplicable(t *testing.T) {
	good := tensor.ConvShape{Batch: 1, InC: 2, InH: 8, InW: 8, OutC: 3, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if !Applicable(good) {
		t.Fatal("stride-1 3x3 must be applicable")
	}
	for _, bad := range []tensor.ConvShape{
		{Batch: 1, InC: 2, InH: 8, InW: 8, OutC: 3, KH: 5, KW: 5, Stride: 1, Pad: 2},
		{Batch: 1, InC: 2, InH: 8, InW: 8, OutC: 3, KH: 3, KW: 3, Stride: 2, Pad: 1},
		{},
	} {
		if Applicable(bad) {
			t.Fatalf("%v should not be applicable", bad)
		}
	}
}

func TestConvMatchesDirect(t *testing.T) {
	cases := []tensor.ConvShape{
		{Batch: 1, InC: 1, InH: 6, InW: 6, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 0},
		{Batch: 2, InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{Batch: 1, InC: 2, InH: 7, InW: 9, OutC: 3, KH: 3, KW: 3, Stride: 1, Pad: 1}, // odd output dims
		{Batch: 1, InC: 4, InH: 5, InW: 5, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 0}, // 3x3 output
	}
	for _, s := range cases {
		in := tensor.RandomTensor4(s.Batch, s.InC, s.InH, s.InW, 41)
		w := tensor.RandomTensor4(s.OutC, s.InC, 3, 3, 42)
		got, err := Conv(in, w, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		want := tensor.ConvRef(in, w, s)
		if d := tensor.Tensor4MaxAbsDiff(got, want); d > 1e-4 {
			t.Errorf("%v: winograd differs from direct by %g", s, d)
		}
	}
}

func TestConvRejectsBadInputs(t *testing.T) {
	s := tensor.ConvShape{Batch: 1, InC: 1, InH: 6, InW: 6, OutC: 1, KH: 3, KW: 3, Stride: 2, Pad: 0}
	in := tensor.NewTensor4(1, 1, 6, 6)
	w := tensor.NewTensor4(1, 1, 3, 3)
	if _, err := Conv(in, w, s); err == nil {
		t.Fatal("stride-2 accepted")
	}
	s.Stride = 1
	if _, err := Conv(tensor.NewTensor4(1, 2, 6, 6), w, s); err == nil {
		t.Fatal("mismatched input accepted")
	}
	if _, err := Conv(in, tensor.NewTensor4(1, 1, 5, 5), s); err == nil {
		t.Fatal("mismatched filter accepted")
	}
}

// Property: Winograd equals direct convolution for arbitrary stride-1 3×3
// shapes — the numerical-accuracy concern that makes libraries gate Winograd
// is bounded rounding, not wrong results.
func TestConvProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := tensor.ConvShape{
			Batch: int(seed%2) + 1,
			InC:   int(seed/2%4) + 1,
			InH:   int(seed/8%8) + 4,
			InW:   int(seed/64%8) + 4,
			OutC:  int(seed/512%4) + 1,
			KH:    3, KW: 3, Stride: 1,
			Pad: int(seed / 2048 % 2),
		}
		if !Applicable(s) {
			return true
		}
		in := tensor.RandomTensor4(s.Batch, s.InC, s.InH, s.InW, seed|1)
		w := tensor.RandomTensor4(s.OutC, s.InC, 3, 3, seed|2)
		got, err := Conv(in, w, s)
		if err != nil {
			return false
		}
		return tensor.Tensor4MaxAbsDiff(got, tensor.ConvRef(in, w, s)) <= 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLower(t *testing.T) {
	s := tensor.ConvShape{Batch: 2, InC: 64, InH: 56, InW: 56, OutC: 128, KH: 3, KW: 3, Stride: 1, Pad: 1}
	l, err := Lower(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Count != 16 {
		t.Fatalf("Count = %d, want 16", l.Count)
	}
	// tiles = 2 × 28 × 28 = 1568.
	if l.Gemm.M != 1568 || l.Gemm.N != 128 || l.Gemm.K != 64 {
		t.Fatalf("Gemm = %v", l.Gemm)
	}
	if l.TransformBytes <= 0 {
		t.Fatal("transform traffic missing")
	}
	// The arithmetic saving: 16 GEMMs of tiles×OC×IC multiplies vs the
	// direct 36 per 4 outputs — ratio must be 36/16 = 2.25.
	winogradMuls := 16.0 * float64(l.Gemm.M) * float64(l.Gemm.N) * float64(l.Gemm.K)
	directMuls := s.FLOPs() / 2
	if ratio := directMuls / winogradMuls; ratio < 2.2 || ratio > 2.3 {
		t.Fatalf("arithmetic reduction = %.2f, want 2.25", ratio)
	}
	if _, err := Lower(tensor.ConvShape{}, 2); err == nil {
		t.Fatal("invalid shape accepted")
	}
}
