// Package winograd implements the Winograd F(2×2, 3×3) fast convolution
// algorithm — the alternative convolution lowering the paper names as future
// work (§7: "we recognize the potential benefits of investigating other
// convolution implementations, such as Winograd"). For stride-1 3×3 filters
// it computes each 2×2 output tile with 16 multiplies instead of 36 (a
// 2.25× arithmetic reduction) at the cost of input/output transforms and a
// larger memory footprint.
//
// The package provides both the numeric algorithm (validated against direct
// convolution) and the lowering of the element-wise-multiply stage to the 16
// batched GEMMs MikPoly plans, so the implicit-GEMM and Winograd paths can
// be compared on the simulator substrate.
package winograd

import (
	"fmt"

	"mikpoly/internal/tensor"
)

// Applicable reports whether the Winograd F(2×2, 3×3) path supports the
// convolution: 3×3 filter, stride 1.
func Applicable(s tensor.ConvShape) bool {
	return s.Valid() && s.KH == 3 && s.KW == 3 && s.Stride == 1
}

// Transform matrices for F(2×2, 3×3):
//
//	U = G·g·Gᵀ   (filter 3×3 → 4×4)
//	V = Bᵀ·d·B   (input 4×4 → 4×4)
//	Y = Aᵀ·M·A   (element product 4×4 → output 2×2)
var (
	gMat = [4][3]float32{
		{1, 0, 0},
		{0.5, 0.5, 0.5},
		{0.5, -0.5, 0.5},
		{0, 0, 1},
	}
	btMat = [4][4]float32{
		{1, 0, -1, 0},
		{0, 1, 1, 0},
		{0, -1, 1, 0},
		{0, 1, 0, -1},
	}
	atMat = [2][4]float32{
		{1, 1, 1, 0},
		{0, 1, -1, -1},
	}
)

// transformFilter computes U = G·g·Gᵀ for one 3×3 filter.
func transformFilter(g *[3][3]float32) [4][4]float32 {
	var tmp [4][3]float32 // G·g
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			var acc float32
			for k := 0; k < 3; k++ {
				acc += gMat[i][k] * g[k][j]
			}
			tmp[i][j] = acc
		}
	}
	var u [4][4]float32 // (G·g)·Gᵀ
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var acc float32
			for k := 0; k < 3; k++ {
				acc += tmp[i][k] * gMat[j][k]
			}
			u[i][j] = acc
		}
	}
	return u
}

// transformInput computes V = Bᵀ·d·B for one 4×4 input patch.
func transformInput(d *[4][4]float32) [4][4]float32 {
	var tmp [4][4]float32 // Bᵀ·d
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var acc float32
			for k := 0; k < 4; k++ {
				acc += btMat[i][k] * d[k][j]
			}
			tmp[i][j] = acc
		}
	}
	var v [4][4]float32 // (Bᵀ·d)·B, with B = (Bᵀ)ᵀ
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var acc float32
			for k := 0; k < 4; k++ {
				acc += tmp[i][k] * btMat[j][k]
			}
			v[i][j] = acc
		}
	}
	return v
}

// transformOutput computes Y = Aᵀ·M·A for one 4×4 product tile.
func transformOutput(m *[4][4]float32) [2][2]float32 {
	var tmp [2][4]float32 // Aᵀ·M
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			var acc float32
			for k := 0; k < 4; k++ {
				acc += atMat[i][k] * m[k][j]
			}
			tmp[i][j] = acc
		}
	}
	var y [2][2]float32 // (Aᵀ·M)·A
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			var acc float32
			for k := 0; k < 4; k++ {
				acc += tmp[i][k] * atMat[j][k]
			}
			y[i][j] = acc
		}
	}
	return y
}

// Conv computes the convolution with the F(2×2, 3×3) algorithm. The result
// matches direct convolution up to transform rounding.
func Conv(in, w *tensor.Tensor4, shape tensor.ConvShape) (*tensor.Tensor4, error) {
	if !Applicable(shape) {
		return nil, fmt.Errorf("winograd: %v is not a stride-1 3x3 convolution", shape)
	}
	if in.N != shape.Batch || in.C != shape.InC || in.H != shape.InH || in.W != shape.InW {
		return nil, fmt.Errorf("winograd: input %dx%dx%dx%d does not match %v", in.N, in.C, in.H, in.W, shape)
	}
	if w.N != shape.OutC || w.C != shape.InC || w.H != 3 || w.W != 3 {
		return nil, fmt.Errorf("winograd: filter %dx%dx%dx%d does not match %v", w.N, w.C, w.H, w.W, shape)
	}
	oh, ow := shape.OutDims()
	out := tensor.NewTensor4(shape.Batch, shape.OutC, oh, ow)

	// Pre-transform every filter: U[oc][ic].
	u := make([][][4][4]float32, shape.OutC)
	for oc := 0; oc < shape.OutC; oc++ {
		u[oc] = make([][4][4]float32, shape.InC)
		for ic := 0; ic < shape.InC; ic++ {
			var g [3][3]float32
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					g[i][j] = w.At(oc, ic, i, j)
				}
			}
			u[oc][ic] = transformFilter(&g)
		}
	}

	tilesY := (oh + 1) / 2
	tilesX := (ow + 1) / 2
	v := make([][4][4]float32, shape.InC)
	for n := 0; n < shape.Batch; n++ {
		for ty := 0; ty < tilesY; ty++ {
			for tx := 0; tx < tilesX; tx++ {
				// Gather and transform the 4×4 input patch per channel.
				for ic := 0; ic < shape.InC; ic++ {
					var d [4][4]float32
					for i := 0; i < 4; i++ {
						iy := ty*2 + i - shape.Pad
						if iy < 0 || iy >= shape.InH {
							continue
						}
						for j := 0; j < 4; j++ {
							ix := tx*2 + j - shape.Pad
							if ix >= 0 && ix < shape.InW {
								d[i][j] = in.At(n, ic, iy, ix)
							}
						}
					}
					v[ic] = transformInput(&d)
				}
				// Element-wise multiply-accumulate over channels, then
				// inverse transform per output channel.
				for oc := 0; oc < shape.OutC; oc++ {
					var m [4][4]float32
					for ic := 0; ic < shape.InC; ic++ {
						uoc := &u[oc][ic]
						vic := &v[ic]
						for i := 0; i < 4; i++ {
							for j := 0; j < 4; j++ {
								m[i][j] += uoc[i][j] * vic[i][j]
							}
						}
					}
					y := transformOutput(&m)
					for i := 0; i < 2; i++ {
						oy := ty*2 + i
						if oy >= oh {
							continue
						}
						for j := 0; j < 2; j++ {
							ox := tx*2 + j
							if ox < ow {
								out.Set(n, oc, oy, ox, y[i][j])
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// Lowering describes the compute structure of the Winograd path for the
// planner: the element-wise stage is 16 independent GEMMs of shape
// (tiles × OutC × InC), plus transform memory traffic.
type Lowering struct {
	// Gemm is the per-transform-point GEMM shape.
	Gemm tensor.GemmShape
	// Count is the number of such GEMMs (16 for F(2×2, 3×3)).
	Count int
	// TransformBytes is the extra input/filter/output transform traffic
	// in bytes (streamed through global memory between stages).
	TransformBytes float64
}

// Lower returns the Winograd lowering of a convolution, or an error if the
// algorithm does not apply.
func Lower(s tensor.ConvShape, inputBytes int) (Lowering, error) {
	if !Applicable(s) {
		return Lowering{}, fmt.Errorf("winograd: %v is not a stride-1 3x3 convolution", s)
	}
	oh, ow := s.OutDims()
	tiles := s.Batch * ((oh + 1) / 2) * ((ow + 1) / 2)
	// V tiles: 16 values per (tile, ic); U: 16 per (oc, ic); M: 16 per
	// (tile, oc). Production implementations fuse the input transform
	// into the batched GEMM's operand load and the inverse transform into
	// its epilogue, so each intermediate costs one streaming pass rather
	// than a DRAM round trip.
	vBytes := float64(16*tiles*s.InC) * float64(inputBytes)
	uBytes := float64(16*s.OutC*s.InC) * float64(inputBytes)
	mBytes := float64(16*tiles*s.OutC) * float64(inputBytes)
	return Lowering{
		Gemm:           tensor.GemmShape{M: tiles, N: s.OutC, K: s.InC},
		Count:          16,
		TransformBytes: vBytes + uBytes + mBytes,
	}, nil
}
