package fleet

// The fleet chaos harness: seeded device-level fault schedules (crash, hang,
// brownout, slow replica) are replayed against a heterogeneous fleet while a
// deterministic request stream runs. Invariants:
//
//  1. zero failed requests — every fault in the schedule is recoverable
//     while at least one capable replica survives, so failover + hedging
//     must absorb all of them;
//  2. per-seed determinism — two runs of the same seed produce identical
//     request records (status + numeric digests);
//  3. bitwise-stable numerics — the chaos run's GEMM digests equal the
//     healthy fleet's, element for element, even when requests failed over
//     to a different device class;
//  4. bounded overhead — goodput degrades no worse than proportionally to
//     lost capacity, proxied as: all requests succeed with a mean attempt
//     count <= 2 while at most half the fleet is lost.
//
// The fleet event log is written to $FLEET_LOG_DIR (CI uploads it as an
// artifact on failure) and dumped into the test log when an invariant trips.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"mikpoly/internal/hw"
	"mikpoly/internal/kvcache"
	"mikpoly/internal/nn"
	"mikpoly/internal/sched"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
	"mikpoly/internal/workload"
)

// chaosRecord is one request's outcome, reduced to the fields that must be
// deterministic across runs: routing (which device served) and simulated
// cycles legitimately vary with wall-clock hedging, numerics must not.
type chaosRecord struct {
	Kind     string
	Status   string
	Checksum float64
	Sample   []float32
}

var chaosShapes = []tensor.GemmShape{
	{M: 96, N: 96, K: 64},
	{M: 192, N: 160, K: 96},
	{M: 120, N: 200, K: 72},
	{M: 37, N: 29, K: 131},
}

const chaosRequests = 28

// buildChaosFleet assembles the standard harness fleet: 2×A100 + 2×NPU.
func buildChaosFleet(t *testing.T, faults []sim.DeviceFaults) *Dispatcher {
	t.Helper()
	classes := []hw.Hardware{hw.A100(), hw.Ascend910(), hw.A100(), hw.Ascend910()}
	devices := make([]*Device, len(classes))
	for i, h := range classes {
		cfg := DeviceConfig{Name: fmt.Sprintf("dev%d-%s", i, h.Name)}
		if i < len(faults) {
			cfg.DevFaults = faults[i]
		}
		devices[i] = NewDevice(testLib(t, h), cfg)
	}
	f := NewDispatcher(devices, Config{
		MaxAttempts:      8,
		HedgeAfter:       5 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Millisecond,
	})
	f.Start()
	return f
}

// runChaosScenario replays the deterministic request stream against a fleet
// under the seed's fault schedule (or a healthy fleet when withFaults is
// false) and returns the per-request records plus the dispatcher for
// forensics. The caller owns Close.
func runChaosScenario(t *testing.T, seed uint64, withFaults bool) ([]chaosRecord, *Dispatcher) {
	t.Helper()
	var faults []sim.DeviceFaults
	if withFaults {
		faults = sim.FleetChaosSchedule(seed, 4, 2+chaosRequests/4)
	}
	f := buildChaosFleet(t, faults)

	records := make([]chaosRecord, 0, chaosRequests)
	for i := 0; i < chaosRequests; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if i%7 == 6 {
			// Every 7th request is a model graph through the per-device
			// graph runtimes (stage recovery ladder included).
			g, err := nn.BuildModel("llama2-decode", nn.ModelDims{Batch: 1, KVLen: 64})
			if err != nil {
				t.Fatalf("building model graph: %v", err)
			}
			_, _, _, err = f.ExecModel(ctx, g)
			records = append(records, chaosRecord{Kind: "model", Status: statusOf(err)})
		} else {
			shape := chaosShapes[i%len(chaosShapes)]
			res, err := f.ExecGemm(ctx, shape, uint64(i)+11, uint64(i)+22)
			rec := chaosRecord{Kind: "gemm", Status: statusOf(err)}
			if err == nil {
				rec.Checksum = res.Checksum
				rec.Sample = res.Sample
			}
			records = append(records, rec)
		}
		cancel()
		// A deterministic probe sweep partway through gives quarantined
		// devices (the hang victim) a readmission path mid-run.
		if i%8 == 7 {
			f.ProbeNow(context.Background())
		}
	}
	return records, f
}

func statusOf(err error) string {
	if err == nil {
		return "ok"
	}
	return "err: " + err.Error()
}

// dumpFleet writes the event log to $FLEET_LOG_DIR (when set) and, on test
// failure, into the test log.
func dumpFleet(t *testing.T, f *Dispatcher, tag string) {
	t.Helper()
	var sb strings.Builder
	if _, err := f.Events().WriteTo(&sb); err != nil {
		t.Logf("dumping event log: %v", err)
	}
	if dir := os.Getenv("FLEET_LOG_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err == nil {
			path := filepath.Join(dir, fmt.Sprintf("fleet-events-%s.log", tag))
			if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
				t.Logf("writing %s: %v", path, err)
			}
		}
	}
	if t.Failed() {
		t.Logf("fleet %s summaries: %+v", tag, f.Summaries())
		t.Logf("fleet %s stats: %+v", tag, f.DispatchStats())
		t.Logf("fleet %s event log:\n%s", tag, sb.String())
	}
}

// chaosSeeds returns the seed matrix: FLEET_CHAOS_SEEDS (comma-separated)
// overrides the default, which is what the CI job's matrix sets.
func chaosSeeds(t *testing.T) []uint64 {
	env := os.Getenv("FLEET_CHAOS_SEEDS")
	if env == "" {
		return []uint64{1, 7, 42}
	}
	var seeds []uint64
	for _, part := range strings.Split(env, ",") {
		s, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			t.Fatalf("bad FLEET_CHAOS_SEEDS entry %q: %v", part, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

func TestFleetChaosRecoverableFaultsLoseNoRequests(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			records, f := runChaosScenario(t, seed, true)
			defer f.Close()
			defer dumpFleet(t, f, fmt.Sprintf("seed%d", seed))

			for i, r := range records {
				if r.Status != "ok" {
					t.Errorf("request %d (%s) failed under a recoverable schedule: %s", i, r.Kind, r.Status)
				}
			}

			// Goodput proportionality proxy: the schedule loses at most 2 of
			// 4 replicas (one crash, one hang window); mean attempts per
			// request must stay <= 2, so throughput degrades no worse than
			// proportionally to the lost capacity.
			stats := f.DispatchStats()
			extra := stats.Failovers + stats.Hedges
			if extra > chaosRequests {
				t.Errorf("overhead attempts %d exceed request count %d — goodput degrades worse than proportionally", extra, chaosRequests)
			}

			// A crashed device freezes at its crash ordinal and serves
			// nothing afterwards.
			faults := sim.FleetChaosSchedule(seed, 4, 2+chaosRequests/4)
			for i, d := range f.Devices() {
				if faults[i].CrashAtOp > 0 && d.State() == StateDead {
					if got := d.started.Load(); got != int64(faults[i].CrashAtOp) {
						t.Errorf("crash victim %s started %d ops, want exactly %d", d.Name(), got, faults[i].CrashAtOp)
					}
				}
			}
		})
	}
}

func TestFleetChaosDeterministicPerSeed(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r1, f1 := runChaosScenario(t, seed, true)
			dumpFleet(t, f1, fmt.Sprintf("seed%d-run1", seed))
			f1.Close()
			r2, f2 := runChaosScenario(t, seed, true)
			dumpFleet(t, f2, fmt.Sprintf("seed%d-run2", seed))
			f2.Close()
			if !reflect.DeepEqual(r1, r2) {
				t.Errorf("seed %d: two runs diverged\nrun1: %+v\nrun2: %+v", seed, r1, r2)
			}
		})
	}
}

func TestFleetChaosNumericsBitwiseEqualHealthyFleet(t *testing.T) {
	seeds := chaosSeeds(t)
	healthy, fh := runChaosScenario(t, seeds[0], false)
	dumpFleet(t, fh, "healthy")
	fh.Close()
	for i, r := range healthy {
		if r.Status != "ok" {
			t.Fatalf("healthy fleet request %d failed: %s", i, r.Status)
		}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			chaos, f := runChaosScenario(t, seed, true)
			defer f.Close()
			defer dumpFleet(t, f, fmt.Sprintf("seed%d-numerics", seed))
			for i := range healthy {
				if healthy[i].Kind != "gemm" || chaos[i].Status != "ok" {
					continue
				}
				if chaos[i].Checksum != healthy[i].Checksum {
					t.Errorf("request %d: chaos checksum %g != healthy %g — failover changed numerics",
						i, chaos[i].Checksum, healthy[i].Checksum)
				}
				if !reflect.DeepEqual(chaos[i].Sample, healthy[i].Sample) {
					t.Errorf("request %d: chaos sample %v != healthy %v", i, chaos[i].Sample, healthy[i].Sample)
				}
			}
		})
	}
}

// TestFleetChaosDrainDuringChaos drains a healthy replica mid-run while the
// fault schedule is live: requests must keep succeeding on what remains.
func TestFleetChaosDrainDuringChaos(t *testing.T) {
	seed := chaosSeeds(t)[0]
	faults := sim.FleetChaosSchedule(seed, 4, 2+chaosRequests/4)
	f := buildChaosFleet(t, faults)
	defer f.Close()
	defer dumpFleet(t, f, "drain")

	// Find a device with no crash/hang role to drain (always exists: 4
	// devices, at most 2 such roles).
	victim := ""
	for i, d := range f.Devices() {
		if faults[i].CrashAtOp == 0 && faults[i].HangAtOp == 0 {
			victim = d.Name()
			break
		}
	}
	shape := chaosShapes[0]
	for i := 0; i < 16; i++ {
		if i == 5 {
			if err := f.Drain(victim); err != nil {
				t.Fatalf("drain %s: %v", victim, err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if _, err := f.ExecGemm(ctx, shape, 1, 2); err != nil {
			cancel()
			t.Fatalf("request %d (drain at 5): %v", i, err)
		}
		cancel()
	}
	// Draining completes asynchronously once the victim's queue runs dry (a
	// hedge-loser op may still be settling), so poll rather than assert.
	d := f.Device(victim)
	deadline := time.Now().Add(10 * time.Second)
	for d.State() != StateDead {
		if time.Now().After(deadline) {
			t.Fatalf("drained device %s state = %s, want dead", victim, d.State())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFleetChaosKVNoLeakNoStrandedTenants drives the SLO-aware generation
// scheduler (internal/sched) through a chaos fleet: prefill chunks route to
// the A100 pool and decode waves to the NPU pool via class-restricted
// dispatch, while the seed's fault schedule crashes and hangs devices
// mid-stream. Invariants, per seed:
//
//  1. no leaked KV pages — every request that dies mid-decode (device crash
//     surfacing as an executor error) must release its pages, so after the
//     replay drains the KV manager is quiescent and LeakedPages == 0;
//  2. no stranded tenant queue — every trace request resolves as completed
//     or failed; no tenant keeps undrained work after the replay returns.
func TestFleetChaosKVNoLeakNoStrandedTenants(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			faults := sim.FleetChaosSchedule(seed, 4, 2+chaosRequests/4)
			f := buildChaosFleet(t, faults)
			defer f.Close()

			// Pool separation over the heterogeneous fleet: prefill prefers
			// the A100 class, decode the NPU class. ExecModelClass crosses
			// pools rather than failing when a whole class is down, so a
			// crash only surfaces as an error once no capable device is
			// routable at all.
			exec := sched.ExecutorFunc(func(ctx context.Context, g nn.Graph, pool string) (float64, error) {
				class := hw.A100().Name
				if pool == sched.PoolDecode {
					class = hw.Ascend910().Name
				}
				rep, _, _, err := f.ExecModelClass(ctx, g, class)
				if err != nil {
					return 0, err
				}
				return rep.Cycles, nil
			})
			s := sched.New(exec, sched.Config{
				HW:            hw.A100(),
				KV:            kvcache.Config{NumPages: 512},
				SeparatePools: true,
				// Generous bounds: chaos probes liveness and accounting,
				// not latency; the serve bench owns the SLO numbers.
				StepSLOMs: 500, TTFTSLOMs: 10000,
			})
			trace := workload.GenerateTrace(workload.TraceConfig{
				Seed:      seed,
				Requests:  20,
				Tenants:   3,
				PromptMin: 32, PromptMax: 256,
				DecodeMin: 4, DecodeMax: 24,
			})
			perTenant := make(map[string]int)
			for _, tr := range trace {
				perTenant[tr.Tenant]++
			}

			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			rep, results, err := s.Replay(ctx, trace)
			if err != nil {
				dumpFleet(t, f, "kv-replay-error")
				t.Fatalf("seed %d: replay: %v", seed, err)
			}

			// Invariant 2: every request resolved, per tenant.
			if rep.Completed+rep.Failed != len(trace) {
				dumpFleet(t, f, "kv-stranded")
				t.Fatalf("seed %d: %d completed + %d failed != %d submitted: stranded requests",
					seed, rep.Completed, rep.Failed, len(trace))
			}
			gotTenant := make(map[string]int)
			for _, r := range results {
				gotTenant[r.Tenant]++
			}
			if !reflect.DeepEqual(gotTenant, perTenant) {
				dumpFleet(t, f, "kv-stranded-tenant")
				t.Fatalf("seed %d: per-tenant resolution %v, want %v (stranded tenant queue)",
					seed, gotTenant, perTenant)
			}
			if rep.Completed == 0 {
				dumpFleet(t, f, "kv-all-failed")
				t.Fatalf("seed %d: no request completed under chaos; failover is not absorbing faults", seed)
			}

			// Invariant 1: crash mid-decode must not leak KV pages.
			if rep.LeakedPages != 0 {
				dumpFleet(t, f, "kv-leak")
				t.Fatalf("seed %d: %d leaked KV pages after drain", seed, rep.LeakedPages)
			}
			if qerr := s.KV().Quiescent(); qerr != nil {
				dumpFleet(t, f, "kv-not-quiescent")
				t.Fatalf("seed %d: KV manager not quiescent after replay: %v", seed, qerr)
			}
		})
	}
}
