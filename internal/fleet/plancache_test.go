package fleet

import (
	"testing"

	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/tensor"
)

func eventKinds(ev *EventLog, kind string) int {
	n := 0
	for _, e := range ev.Snapshot() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// TestDeviceWarmStartFromSnapshot: a device built with a matching snapshot
// warm-loads the donor's programs and logs the warm event.
func TestDeviceWarmStartFromSnapshot(t *testing.T) {
	lib := testLib(t, hw.A100())
	donor := core.NewCompilerFromLibrary(lib)
	shape := tensor.GemmShape{M: 96, N: 96, K: 64}
	if _, err := donor.Plan(shape); err != nil {
		t.Fatal(err)
	}
	snap, err := donor.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	ev := NewEventLog(0)
	d := NewDevice(lib, DeviceConfig{Name: "warm-0", Events: ev, PlanSnapshot: snap})
	if st := d.comp.PlanCache(); st.Imported != 1 || st.ImportRejects != 0 {
		t.Fatalf("PlanCache stats %+v, want imported=1 rejects=0", st)
	}
	if eventKinds(ev, "plancache-warm") != 1 {
		t.Fatalf("no plancache-warm event logged: %+v", ev.Snapshot())
	}
}

// TestDeviceRejectsForeignSnapshot: in a mixed fleet every class receives the
// same base snapshot; non-matching classes must reject it non-fatally (logged,
// counted, device still comes up cold).
func TestDeviceRejectsForeignSnapshot(t *testing.T) {
	donor := core.NewCompilerFromLibrary(testLib(t, hw.A100()))
	if _, err := donor.Plan(tensor.GemmShape{M: 96, N: 96, K: 64}); err != nil {
		t.Fatal(err)
	}
	snap, err := donor.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	ev := NewEventLog(0)
	d := NewDevice(testLib(t, hw.Ascend910()), DeviceConfig{Name: "cold-0", Events: ev, PlanSnapshot: snap})
	if st := d.comp.PlanCache(); st.Imported != 0 || st.ImportRejects != 1 {
		t.Fatalf("PlanCache stats %+v, want imported=0 rejects=1", st)
	}
	if eventKinds(ev, "plancache-reject") != 1 {
		t.Fatalf("no plancache-reject event logged: %+v", ev.Snapshot())
	}
	// The rejection is non-fatal: the device still serves, planning online.
	d.Start()
	defer d.Close()
}
