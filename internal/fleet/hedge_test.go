package fleet

import (
	"context"
	"testing"
	"time"
)

// These tests pin the hedge double-booking fix: a request that hedges has ONE
// winner, and only the winner's outcome enters the success/latency books. The
// run functions are channel-gated so the interleaving is deterministic: the
// primary cannot finish before the hedge launches, and the hedge cannot
// finish before the attempt has already returned with the primary's result.

// TestHedgeLateLoserSuccessExcluded: the penalized primary wins, the hedge
// finishes late and successfully. Neither outcome may touch the latency EWMAs
// (the primary's duration is inflated past its hedge delay, the hedge's by
// losing the race), the hedge-fire strike on the primary must stand even
// though it ultimately succeeded, and the late hedge success must not count
// as a hedge win.
func TestHedgeLateLoserSuccessExcluded(t *testing.T) {
	cfg := fastCfg()
	cfg.HedgeAfter = 2 * time.Millisecond
	cfg.BreakerThreshold = 1 // one hedge strike opens the primary's breaker
	f := newTestFleet(t, 2, nil, cfg, true)
	primary, hedge := f.devices[0], f.devices[1]

	hedgeLaunched := make(chan struct{})
	release := make(chan struct{})
	hedgeDone := make(chan struct{})
	run := func(ctx context.Context, d *Device, salt uint64) (any, error) {
		if d == primary {
			<-hedgeLaunched
			return "primary", nil
		}
		close(hedgeLaunched)
		defer close(hedgeDone)
		<-release
		return "hedge", nil
	}

	v, winner, launched, err := f.attempt(context.Background(),
		primary, map[*Device]bool{primary: true}, "", run, 1)
	if err != nil || v != "primary" || winner != primary || launched != 2 {
		t.Fatalf("attempt = (%v, %v, %d, %v), want (primary, primary, 2, nil)", v, winner, launched, err)
	}

	close(release)
	<-hedgeDone
	time.Sleep(20 * time.Millisecond) // let the settle drain process the late outcome

	if got := f.lat[f.idx[primary]].get(); got != 0 {
		t.Errorf("penalized primary fed the latency EWMA: %v (its duration includes the hedge delay)", got)
	}
	if got := f.lat[f.idx[hedge]].get(); got != 0 {
		t.Errorf("losing hedge fed the latency EWMA: %v (its duration includes losing the race)", got)
	}
	if st := f.BreakerState(primary.name); st != BreakerOpen {
		t.Errorf("primary breaker = %s, want open (late success must not erase the hedge strike)", st)
	}
	if st := f.BreakerState(hedge.name); st != BreakerClosed {
		t.Errorf("hedge breaker = %s, want closed (a late success is not a fault)", st)
	}
	stats := f.DispatchStats()
	if stats.Hedges != 1 || stats.HedgeWins != 0 {
		t.Errorf("hedges=%d hedgeWins=%d, want 1 and 0 (the hedge lost)", stats.Hedges, stats.HedgeWins)
	}
}

// TestHedgeScaleStretchesDelay: the brownout ladder's SetHedgeScale must
// multiply the adaptive hedge delay (halving hedge frequency at scale 2)
// while the HedgeAfter floor still applies, and reset cleanly.
func TestHedgeScaleStretchesDelay(t *testing.T) {
	cfg := fastCfg()
	cfg.HedgeAfter = time.Millisecond
	f := newTestFleet(t, 1, nil, cfg, true)
	d := f.devices[0]
	f.lat[f.idx[d]].observe(10 * time.Millisecond)

	base := f.hedgeDelay(d)
	f.SetHedgeScale(2)
	if got := f.hedgeDelay(d); got != 2*base {
		t.Fatalf("scaled hedge delay = %v, want %v", got, 2*base)
	}
	f.SetHedgeScale(0) // resets to nominal
	if got := f.hedgeDelay(d); got != base {
		t.Fatalf("reset hedge delay = %v, want %v", got, base)
	}
	if f.HedgeScale() != 1 {
		t.Fatalf("HedgeScale() = %v after reset, want 1", f.HedgeScale())
	}
}

// TestHedgeLateLoserFaultStillStrikes: the hedge loses the race and then
// crashes. Losing does not launder the crash — the hedge's breaker must trip
// even though its outcome arrived after the request already had a winner.
func TestHedgeLateLoserFaultStillStrikes(t *testing.T) {
	cfg := fastCfg()
	cfg.HedgeAfter = 2 * time.Millisecond
	f := newTestFleet(t, 2, nil, cfg, true)
	primary, hedge := f.devices[0], f.devices[1]

	hedgeLaunched := make(chan struct{})
	release := make(chan struct{})
	run := func(ctx context.Context, d *Device, salt uint64) (any, error) {
		if d == primary {
			<-hedgeLaunched
			return "primary", nil
		}
		close(hedgeLaunched)
		<-release
		return nil, ErrDeviceCrashed
	}

	if _, winner, _, err := f.attempt(context.Background(),
		primary, map[*Device]bool{primary: true}, "", run, 1); err != nil || winner != primary {
		t.Fatalf("attempt winner = %v (err %v), want primary", winner, err)
	}
	close(release)

	deadline := time.Now().Add(2 * time.Second)
	for f.BreakerState(hedge.name) != BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatal("late crash from the losing hedge never tripped its breaker")
		}
		time.Sleep(time.Millisecond)
	}
	if got := f.lat[f.idx[hedge]].get(); got != 0 {
		t.Errorf("crashed hedge fed the latency EWMA: %v", got)
	}
	if stats := f.DispatchStats(); stats.HedgeWins != 0 {
		t.Errorf("hedgeWins = %d, want 0", stats.HedgeWins)
	}
}
