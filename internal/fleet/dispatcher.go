package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mikpoly/internal/graphrt"
	"mikpoly/internal/nn"
	"mikpoly/internal/obs"
	"mikpoly/internal/tensor"
)

// ErrNoDevices means no routable, breaker-closed device exists for the
// request — the one fault class the fleet cannot absorb.
var ErrNoDevices = errors.New("fleet: no capable device available")

// Config tunes the dispatcher. Zero fields take defaults.
type Config struct {
	// MaxAttempts bounds the total execution attempts per request,
	// including the primary, failovers, and hedges (default 4).
	MaxAttempts int

	// HedgeAfter is the floor of the hedge delay; a second attempt fires
	// on another replica when the primary has been out longer than
	// max(HedgeAfter, HedgeMult × its latency estimate). Negative disables
	// hedging. Default 25ms.
	HedgeAfter time.Duration
	// HedgeMult scales the per-device latency estimate into the hedge
	// trigger (default 4).
	HedgeMult float64

	// BreakerThreshold is the consecutive-failure count that opens a
	// device's breaker (default 3); BreakerCooldown how long it stays open
	// before the prober may run a readmission canary (default 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// ProbeInterval is the background prober period; 0 (the default)
	// disables the background loop — ProbeNow can still be driven manually,
	// which is what deterministic tests do.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one readmission canary (default 250ms);
	// ProbeShape is the canary GEMM (default 64×64×64).
	ProbeTimeout time.Duration
	ProbeShape   tensor.GemmShape

	// Events receives dispatcher and device events (nil = new private log).
	Events *EventLog
	// Obs threads dispatcher spans and metrics (nil = unobserved).
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 25 * time.Millisecond
	}
	if c.HedgeMult <= 0 {
		c.HedgeMult = 4
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 250 * time.Millisecond
	}
	if !c.ProbeShape.Valid() {
		c.ProbeShape = tensor.GemmShape{M: 64, N: 64, K: 64}
	}
	return c
}

// ewma is a per-device latency estimator (successful-attempt wall time).
type ewma struct {
	mu sync.Mutex
	v  time.Duration
}

func (e *ewma) observe(d time.Duration) {
	e.mu.Lock()
	if e.v == 0 {
		e.v = d
	} else {
		e.v = time.Duration(0.7*float64(e.v) + 0.3*float64(d))
	}
	e.mu.Unlock()
}

func (e *ewma) get() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.v
}

// Dispatcher routes requests across a heterogeneous device fleet:
// least-outstanding-requests among routable, breaker-closed devices, with
// capacity weights from each device's peak FLOPS derated by its health
// fingerprint (quarantined PEs and adopted bandwidth derates shrink a
// replica's share). Failed attempts fail over to other replicas — each
// replica re-plans against its own H' through its fingerprint-keyed cache —
// and slow primaries are hedged with a second attempt.
type Dispatcher struct {
	devices []*Device
	idx     map[*Device]int
	cfg     Config
	o       *obs.Obs
	events  *EventLog
	brk     []*deviceBreaker
	lat     []*ewma
	maxPeak float64

	rr   atomic.Uint64 // deterministic tie-break rotation
	quit chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	probeMu sync.Mutex // one probe sweep at a time

	nRequests       atomic.Int64
	nFailovers      atomic.Int64
	nHedges         atomic.Int64
	nHedgeWins      atomic.Int64
	nBreakerTrips   atomic.Int64
	nReadmissions   atomic.Int64
	nProbes         atomic.Int64
	nNoDevice       atomic.Int64
	nClassFallbacks atomic.Int64

	// hedgeScale stretches hedgeDelay under brownout (float64 bits;
	// zero value reads as 1.0).
	hedgeScale atomic.Uint64
}

// NewDispatcher builds a dispatcher over the devices. Call Start to launch
// the device workers (and the background prober, if configured).
func NewDispatcher(devices []*Device, cfg Config) *Dispatcher {
	cfg = cfg.withDefaults()
	ev := cfg.Events
	if ev == nil {
		ev = NewEventLog(0)
	}
	f := &Dispatcher{
		devices: devices,
		idx:     make(map[*Device]int, len(devices)),
		cfg:     cfg,
		o:       cfg.Obs,
		events:  ev,
		brk:     make([]*deviceBreaker, len(devices)),
		lat:     make([]*ewma, len(devices)),
		quit:    make(chan struct{}),
	}
	for i, d := range devices {
		f.idx[d] = i
		f.brk[i] = newDeviceBreaker(cfg.BreakerThreshold)
		f.lat[i] = &ewma{}
		if d.events == nil {
			d.events = ev
		}
		if p := d.h.PeakFLOPS(); p > f.maxPeak {
			f.maxPeak = p
		}
	}
	if f.maxPeak <= 0 {
		f.maxPeak = 1
	}
	return f
}

// Start launches every device worker and, when ProbeInterval is set, the
// background readmission prober.
func (f *Dispatcher) Start() {
	for _, d := range f.devices {
		d.Start()
	}
	if f.cfg.ProbeInterval > 0 {
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			t := time.NewTicker(f.cfg.ProbeInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					f.ProbeNow(context.Background())
				case <-f.quit:
					return
				}
			}
		}()
	}
}

// Close stops the prober and every device worker.
func (f *Dispatcher) Close() {
	f.once.Do(func() { close(f.quit) })
	f.wg.Wait()
	for _, d := range f.devices {
		d.Close()
	}
}

// Devices returns the fleet members (routing order).
func (f *Dispatcher) Devices() []*Device { return f.devices }

// Events returns the fleet's operational event log.
func (f *Dispatcher) Events() *EventLog { return f.events }

// Device returns the named device, or nil.
func (f *Dispatcher) Device(name string) *Device {
	for _, d := range f.devices {
		if d.name == name {
			return d
		}
	}
	return nil
}

// Drain starts draining the named device: it takes no new work and goes
// dead once its queue runs dry.
func (f *Dispatcher) Drain(name string) error {
	d := f.Device(name)
	if d == nil {
		return fmt.Errorf("fleet: no device named %q", name)
	}
	if !d.StartDrain() {
		return fmt.Errorf("fleet: device %q is %s, cannot drain", name, d.State())
	}
	f.events.Append(name, "drain", "admin drain requested")
	return nil
}

// weight is a device's routing capacity: normalized peak FLOPS derated by
// its health fingerprint — the live-PE fraction and any adopted bandwidth
// derate. A degraded replica keeps serving, just a proportionally smaller
// share.
func (f *Dispatcher) weight(d *Device) float64 {
	w := d.h.PeakFLOPS() / f.maxPeak
	v := d.reg.View()
	if v.NumPEs > 0 {
		w *= float64(v.NumPEs-len(v.Quarantined)) / float64(v.NumPEs)
	}
	if bf := v.BandwidthFactor; bf > 0 && bf < 1 {
		w *= bf
	}
	if w <= 0 || math.IsNaN(w) {
		w = 1e-9
	}
	return w
}

// pick selects the least-loaded eligible device: minimal
// (outstanding+1)/weight among routable, breaker-closed devices not in
// exclude, with a rotating deterministic tie-break so equal replicas share
// load round-robin. An open breaker sheds load only while an alternative
// exists: if every breaker-closed candidate is excluded or gone, the second
// pass admits routable devices with open breakers — quarantining the whole
// fleet at once would serve nobody, and "no request with a surviving capable
// device fails" outranks quarantine.
//
// A non-empty class restricts routing to devices of that class (pool
// separation: prefill and decode waves on disjoint replicas) with the same
// survival clause: when no device of the class is routable, the class
// constraint is dropped rather than failing the request, and the fallback is
// counted and logged.
func (f *Dispatcher) pick(exclude map[*Device]bool, class string) *Device {
	n := len(f.devices)
	if n == 0 {
		return nil
	}
	rot := int(f.rr.Add(1)) % n
	classes := []string{class}
	if class != "" {
		classes = append(classes, "")
	}
	for _, cl := range classes {
		for _, ignoreBreakers := range []bool{false, true} {
			var best *Device
			bestScore := math.Inf(1)
			for i := 0; i < n; i++ {
				k := (rot + i) % n
				d := f.devices[k]
				if exclude[d] || !d.Routable() || (!ignoreBreakers && !f.brk[k].allows()) {
					continue
				}
				if cl != "" && d.class != cl {
					continue
				}
				score := float64(d.Outstanding()+1) / f.weight(d)
				if score < bestScore-1e-12 {
					best, bestScore = d, score
				}
			}
			if best != nil {
				if cl == "" && class != "" {
					f.nClassFallbacks.Add(1)
					f.events.Append(best.name, "class-fallback",
						"no routable "+class+" device; crossing pools")
				}
				return best
			}
		}
	}
	return nil
}

// strike records a failure against a device's breaker (crashes trip it
// immediately — no point counting a dead device to the threshold).
func (f *Dispatcher) strike(d *Device, err error) {
	i := f.idx[d]
	tripped := false
	if errors.Is(err, ErrDeviceCrashed) || errors.Is(err, ErrDeviceDown) {
		tripped = f.brk[i].forceOpen()
	} else {
		tripped = f.brk[i].record(false)
	}
	if tripped {
		f.nBreakerTrips.Add(1)
		f.events.Append(d.name, "breaker-open", err.Error())
	}
}

// recordOutcome settles one attempt outcome into the breaker and latency
// books. Devices already penalized at hedge-fire time are skipped entirely —
// success included: the hedge-fire strike is the deterministic slowness
// verdict, and a penalized primary that eventually completes must not reset
// it or book its inflated latency. Pure caller cancellations and queue-full
// rejections are also skipped (load, not fault).
func (f *Dispatcher) recordOutcome(d *Device, err error, dur time.Duration, penalized map[*Device]bool) {
	if penalized[d] {
		return
	}
	if err == nil {
		f.lat[f.idx[d]].observe(dur)
		f.brk[f.idx[d]].record(true)
		return
	}
	if errors.Is(err, ErrDeviceBusy) || !retryableOn(err) {
		return
	}
	f.strike(d, err)
}

// recordLateOutcome settles a losing attempt that resolved after the request
// already had a winner. A late success is dropped outright — the request's
// success and latency were booked for the winner, so counting the loser too
// would double-book the request into the mik_fleet_* books and feed its EWMA
// a duration inflated by losing the race (it includes the time spent losing,
// not the device's service time). Genuine faults from non-penalized losers
// still strike their breaker: losing the race does not launder a crash.
func (f *Dispatcher) recordLateOutcome(d *Device, err error, penalized map[*Device]bool) {
	if penalized[d] || err == nil {
		return
	}
	if errors.Is(err, ErrDeviceBusy) || !retryableOn(err) {
		return
	}
	f.strike(d, err)
}

// outcome is one resolved execution attempt.
type outcome struct {
	d   *Device
	v   any
	err error
	dur time.Duration
}

// attempt runs one request attempt on primary, hedging onto a second
// replica if the primary exceeds its latency estimate. It returns the
// winning value and device plus the number of attempts launched.
func (f *Dispatcher) attempt(ctx context.Context, primary *Device, tried map[*Device]bool, class string,
	run func(ctx context.Context, d *Device, salt uint64) (any, error), baseSalt uint64,
) (any, *Device, int, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, 2)
	launch := func(d *Device, salt uint64) {
		start := time.Now()
		go func() {
			v, err := run(actx, d, salt)
			ch <- outcome{d: d, v: v, err: err, dur: time.Since(start)}
		}()
	}
	launch(primary, baseSalt)
	launched, pending := 1, 1
	penalized := make(map[*Device]bool)
	hedged := false

	var hedgeC <-chan time.Time
	if f.cfg.HedgeAfter >= 0 {
		t := time.NewTimer(f.hedgeDelay(primary))
		defer t.Stop()
		hedgeC = t.C
	}

	// settle cancels and drains still-pending attempts in the background
	// after the attempt resolves. Late losers go through recordLateOutcome:
	// their successes and latencies are excluded from the books (the winner
	// already booked the request), while genuine faults from non-penalized
	// losers still strike their breaker.
	settle := func(c context.CancelFunc) {
		c()
		if pending == 0 {
			return
		}
		n := pending
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			for i := 0; i < n; i++ {
				out := <-ch
				f.recordLateOutcome(out.d, out.err, penalized)
			}
		}()
	}

	var firstErr error
	for pending > 0 {
		select {
		case out := <-ch:
			pending--
			if out.err == nil {
				f.recordOutcome(out.d, nil, out.dur, penalized)
				settle(cancel)
				if hedged && out.d != primary {
					f.nHedgeWins.Add(1)
					f.events.Append(out.d.name, "hedge-win", "hedge beat "+primary.name)
				}
				return out.v, out.d, launched, nil
			}
			f.recordOutcome(out.d, out.err, out.dur, penalized)
			if firstErr == nil || (!retryableOn(firstErr) && retryableOn(out.err)) {
				firstErr = out.err
			}
		case <-hedgeC:
			hedgeC = nil
			h := f.pick(tried, class)
			if h == nil {
				continue
			}
			tried[h] = true
			// The primary exceeding its latency estimate is itself the
			// misbehavior signal: strike its breaker now, synchronously, so
			// hung replicas trip deterministically even though their attempt
			// only resolves after cancellation.
			penalized[primary] = true
			f.strike(primary, ErrDeviceHung)
			f.nHedges.Add(1)
			f.events.Append(primary.name, "hedge", "hedging onto "+h.name)
			launch(h, baseSalt+1)
			launched++
			pending++
			hedged = true
		case <-ctx.Done():
			settle(cancel)
			return nil, nil, launched, ctx.Err()
		}
	}
	return nil, nil, launched, firstErr
}

// hedgeDelay is the wait before a second attempt fires for this primary.
// The overload brownout ladder stretches it through SetHedgeScale: a scale
// of 2 fires hedges half as often under the same latency distribution,
// shedding the duplicate-work amplification exactly when capacity is
// scarcest.
func (f *Dispatcher) hedgeDelay(d *Device) time.Duration {
	est := f.lat[f.idx[d]].get()
	delay := time.Duration(f.cfg.HedgeMult * f.HedgeScale() * float64(est))
	if delay < f.cfg.HedgeAfter {
		delay = f.cfg.HedgeAfter
	}
	return delay
}

// SetHedgeScale multiplies the adaptive hedge delay (floor HedgeAfter still
// applies). Values <= 0 reset to 1. Safe from any goroutine.
func (f *Dispatcher) SetHedgeScale(scale float64) {
	if scale <= 0 {
		scale = 1
	}
	f.hedgeScale.Store(math.Float64bits(scale))
}

// HedgeScale returns the current hedge-delay multiplier (1 = nominal).
func (f *Dispatcher) HedgeScale() float64 {
	bits := f.hedgeScale.Load()
	if bits == 0 {
		return 1
	}
	return math.Float64frombits(bits)
}

// do routes one request: pick, attempt (with hedging), and fail over to
// other replicas on device-local failure, bounded by MaxAttempts. Each
// attempt carries a distinct salt so transient injected faults can clear.
// A non-empty class prefers devices of that class (see pick).
func (f *Dispatcher) do(ctx context.Context, kind, class string,
	run func(ctx context.Context, d *Device, salt uint64) (any, error),
) (any, *Device, int, error) {
	ctx, sp := f.o.T().Start(ctx, "fleet.dispatch")
	defer sp.End()
	f.nRequests.Add(1)
	tried := make(map[*Device]bool)
	attempts := 0
	var lastErr error
	for attempts < f.cfg.MaxAttempts {
		d := f.pick(tried, class)
		if d == nil {
			if len(tried) == 0 {
				f.nNoDevice.Add(1)
				sp.Attr("no_device", 1)
				return nil, nil, attempts, ErrNoDevices
			}
			// Every eligible replica has been tried once this request:
			// allow re-tries (a fresh salt can clear transient faults on
			// an otherwise healthy device).
			clear(tried)
			d = f.pick(tried, class)
			if d == nil {
				f.nNoDevice.Add(1)
				break
			}
		}
		tried[d] = true
		v, winner, n, err := f.attempt(ctx, d, tried, class, run, uint64(attempts))
		attempts += n
		if err == nil {
			sp.Attr("attempts", float64(attempts))
			return v, winner, attempts, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, nil, attempts, ctx.Err()
		}
		if !retryableOn(err) {
			return nil, nil, attempts, err
		}
		if attempts < f.cfg.MaxAttempts {
			f.nFailovers.Add(1)
			f.events.Append(d.name, "failover", kind+": "+err.Error())
		}
	}
	if lastErr == nil {
		lastErr = ErrNoDevices
	}
	return nil, nil, attempts, fmt.Errorf("fleet: %s failed after %d attempts: %w", kind, attempts, lastErr)
}

// ExecGemm routes one GEMM execution across the fleet.
func (f *Dispatcher) ExecGemm(ctx context.Context, shape tensor.GemmShape, seedA, seedB uint64) (GemmResult, error) {
	v, d, attempts, err := f.do(ctx, "gemm", "", func(ctx context.Context, dev *Device, salt uint64) (any, error) {
		res, err := dev.ExecGemm(ctx, shape, seedA, seedB, salt)
		if err != nil {
			return nil, err
		}
		return res, nil
	})
	if err != nil {
		return GemmResult{Shape: shape, Attempts: attempts}, err
	}
	g := v.(GemmResult)
	g.Attempts = attempts
	g.Device = d.name
	return g, nil
}

// ExecModel routes one model-graph execution across the fleet, returning the
// runtime report, the serving device's name, and the attempt count.
func (f *Dispatcher) ExecModel(ctx context.Context, g nn.Graph) (graphrt.Report, string, int, error) {
	return f.ExecModelClass(ctx, g, "")
}

// ExecModelClass routes one model-graph execution preferring devices of the
// given class — the pool-separation primitive: a serving scheduler sends
// prefill chunks to one device class and decode waves to another, so long
// prefills never stall a decode step. An empty class routes anywhere; a
// class with no routable device falls back to the whole fleet (counted in
// DispatchStats.ClassFallbacks) rather than failing the request.
func (f *Dispatcher) ExecModelClass(ctx context.Context, g nn.Graph, class string) (graphrt.Report, string, int, error) {
	v, d, attempts, err := f.do(ctx, "model", class, func(ctx context.Context, dev *Device, salt uint64) (any, error) {
		rep, err := dev.ExecModel(ctx, g, salt)
		if err != nil {
			return nil, err
		}
		return rep, nil
	})
	if err != nil {
		return graphrt.Report{}, "", attempts, err
	}
	return v.(graphrt.Report), d.name, attempts, nil
}

// ProbeNow sweeps the fleet once, sending a readmission canary to every
// device whose breaker is open past its cooldown. Dead and draining devices
// are skipped (they are not coming back). Returns the number of devices
// readmitted. The background prober calls this on its interval;
// deterministic tests call it directly.
func (f *Dispatcher) ProbeNow(ctx context.Context) int {
	f.probeMu.Lock()
	defer f.probeMu.Unlock()
	readmitted := 0
	for i, d := range f.devices {
		if !d.Routable() {
			continue
		}
		if !f.brk[i].beginProbe(f.cfg.BreakerCooldown) {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, f.cfg.ProbeTimeout)
		_, err := d.ExecGemm(pctx, f.cfg.ProbeShape, 1, 2, 0x9e3779b97f4a7c15)
		cancel()
		f.nProbes.Add(1)
		ok := err == nil
		f.brk[i].probeResult(ok)
		if ok {
			readmitted++
			f.nReadmissions.Add(1)
			f.events.Append(d.name, "readmit", "probe succeeded, breaker closed")
		} else {
			f.events.Append(d.name, "probe-fail", err.Error())
		}
	}
	return readmitted
}

// BreakerState returns the named device's breaker state (closed if unknown).
func (f *Dispatcher) BreakerState(name string) BreakerState {
	for i, d := range f.devices {
		if d.name == name {
			return f.brk[i].current()
		}
	}
	return BreakerClosed
}

// Stats is the dispatcher's cumulative counter snapshot.
type Stats struct {
	Requests     int64 `json:"requests"`
	Failovers    int64 `json:"failovers"`
	Hedges       int64 `json:"hedges"`
	HedgeWins    int64 `json:"hedge_wins"`
	BreakerTrips int64 `json:"breaker_trips"`
	Readmissions int64 `json:"readmissions"`
	Probes       int64 `json:"probes"`
	NoDevice     int64 `json:"no_device"`
	// ClassFallbacks counts class-restricted requests that crossed pools
	// because no device of the requested class was routable.
	ClassFallbacks int64 `json:"class_fallbacks"`
}

// DispatchStats snapshots the cumulative routing counters.
func (f *Dispatcher) DispatchStats() Stats {
	return Stats{
		Requests:       f.nRequests.Load(),
		Failovers:      f.nFailovers.Load(),
		Hedges:         f.nHedges.Load(),
		HedgeWins:      f.nHedgeWins.Load(),
		BreakerTrips:   f.nBreakerTrips.Load(),
		Readmissions:   f.nReadmissions.Load(),
		Probes:         f.nProbes.Load(),
		NoDevice:       f.nNoDevice.Load(),
		ClassFallbacks: f.nClassFallbacks.Load(),
	}
}

// Summaries snapshots every device for /healthz and the admin endpoints.
func (f *Dispatcher) Summaries() []DeviceSummary {
	out := make([]DeviceSummary, len(f.devices))
	for i, d := range f.devices {
		out[i] = DeviceSummary{
			Name:        d.name,
			Class:       d.class,
			State:       d.State().String(),
			Breaker:     f.brk[i].current().String(),
			Fingerprint: d.reg.View().Fingerprint(),
			Outstanding: d.outstanding.Load(),
			Started:     d.started.Load(),
			Completed:   d.completed.Load(),
			Failed:      d.failed.Load(),
			Weight:      f.weight(d),
		}
	}
	return out
}
