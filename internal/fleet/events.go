// Package fleet generalizes the single simulated accelerator into a cluster
// of heterogeneous replicas: each Device wraps its own hardware model,
// compiler + fingerprint-keyed plan cache, health registry and graph runtime
// behind a serialized command queue with a lifecycle state machine, and a
// Dispatcher routes requests across them with health- and load-aware
// balancing, failover, hedging, and per-device circuit breaking.
//
// The design premise is the paper's: online polymerization makes planning
// cheap enough (microseconds) that a request which fails over to a different
// device class can be re-planned against that device's H' on the request
// path — no pre-tuned per-device plan set needed. Numerics are preserved
// across failover because every program partitions the same iteration space
// with sequential-K accumulation, so results are bitwise-identical across
// device classes.
package fleet

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one entry in the fleet's append-only operational log: lifecycle
// transitions, failovers, hedges, breaker trips, probes, and drains. The
// chaos harness dumps the log as a CI artifact when an invariant fails.
type Event struct {
	Seq    int       `json:"seq"`
	Time   time.Time `json:"time"`
	Device string    `json:"device"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail,omitempty"`
}

// EventLog is a bounded append-only event buffer, safe for concurrent use.
// When full it drops the oldest half, keeping the tail — the recent events
// are the ones a post-mortem needs.
type EventLog struct {
	mu     sync.Mutex
	events []Event
	seq    int
	cap    int
}

// NewEventLog returns a log bounded to capacity events (<= 0 selects 4096).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 4096
	}
	return &EventLog{cap: capacity}
}

// Append records one event. A nil log is a no-op, so devices and dispatchers
// can log unconditionally.
func (l *EventLog) Append(device, kind, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	if len(l.events) >= l.cap {
		half := len(l.events) / 2
		l.events = append(l.events[:0], l.events[half:]...)
	}
	l.events = append(l.events, Event{
		Seq: l.seq, Time: time.Now(), Device: device, Kind: kind, Detail: detail,
	})
}

// Snapshot returns a copy of the buffered events.
func (l *EventLog) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// WriteTo dumps the log as one line per event, oldest first.
func (l *EventLog) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range l.Snapshot() {
		n, err := fmt.Fprintf(w, "%6d %s %-14s %-12s %s\n",
			e.Seq, e.Time.UTC().Format("15:04:05.000"), e.Device, e.Kind, e.Detail)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
