package fleet

import (
	"context"
	"errors"
	"testing"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

func testOpts() tune.Options {
	return tune.Options{NGen: 6, NSyn: 9, NMik: 10, NPred: 256}
}

func testLib(t *testing.T, h hw.Hardware) *tune.Library {
	t.Helper()
	lib, err := core.SharedLibrary(h, testOpts())
	if err != nil {
		t.Fatalf("tuning library for %s: %v", h.Name, err)
	}
	return lib
}

func newTestDevice(t *testing.T, h hw.Hardware, cfg DeviceConfig) *Device {
	t.Helper()
	d := NewDevice(testLib(t, h), cfg)
	d.Start()
	t.Cleanup(d.Close)
	return d
}

func TestDeviceLifecycle(t *testing.T) {
	d := NewDevice(testLib(t, hw.A100()), DeviceConfig{Name: "dev"})
	if d.State() != StateStarting {
		t.Fatalf("fresh device state = %s, want starting", d.State())
	}
	if _, err := d.ExecGemm(context.Background(), tensor.GemmShape{M: 64, N: 64, K: 64}, 1, 2, 0); !errors.Is(err, ErrDeviceDown) {
		t.Fatalf("submit before Start: err = %v, want ErrDeviceDown", err)
	}
	d.Start()
	defer d.Close()
	if d.State() != StateHealthy {
		t.Fatalf("started device state = %s, want healthy", d.State())
	}
	res, err := d.ExecGemm(context.Background(), tensor.GemmShape{M: 96, N: 96, K: 64}, 1, 2, 0)
	if err != nil {
		t.Fatalf("ExecGemm: %v", err)
	}
	if res.Checksum == 0 || len(res.Sample) != 4 {
		t.Fatalf("ExecGemm returned empty digest: %+v", res)
	}

	if !d.StartDrain() {
		t.Fatal("StartDrain on a healthy idle device must succeed")
	}
	if d.State() != StateDead {
		t.Fatalf("idle drained device state = %s, want dead", d.State())
	}
	if _, err := d.ExecGemm(context.Background(), tensor.GemmShape{M: 64, N: 64, K: 64}, 1, 2, 0); !errors.Is(err, ErrDeviceDown) {
		t.Fatalf("submit after drain: err = %v, want ErrDeviceDown", err)
	}
	if d.StartDrain() {
		t.Fatal("StartDrain on a dead device must fail")
	}
}

func TestDeviceCrashKillsPermanently(t *testing.T) {
	d := newTestDevice(t, hw.A100(), DeviceConfig{Name: "crash", DevFaults: sim.DeviceFaults{CrashAtOp: 2}})
	shape := tensor.GemmShape{M: 96, N: 96, K: 64}
	if _, err := d.ExecGemm(context.Background(), shape, 1, 2, 0); err != nil {
		t.Fatalf("op 1 (before crash): %v", err)
	}
	if _, err := d.ExecGemm(context.Background(), shape, 1, 2, 1); !errors.Is(err, ErrDeviceCrashed) {
		t.Fatalf("op 2: err = %v, want ErrDeviceCrashed", err)
	}
	if d.State() != StateDead {
		t.Fatalf("post-crash state = %s, want dead", d.State())
	}
	if _, err := d.ExecGemm(context.Background(), shape, 1, 2, 2); !errors.Is(err, ErrDeviceDown) {
		t.Fatalf("op after crash: err = %v, want ErrDeviceDown", err)
	}
}

func TestDeviceHangReleasesOnContextCancel(t *testing.T) {
	d := newTestDevice(t, hw.A100(), DeviceConfig{Name: "hang", DevFaults: sim.DeviceFaults{HangAtOp: 1}})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := d.ExecGemm(ctx, tensor.GemmShape{M: 64, N: 64, K: 64}, 1, 2, 0)
	if !errors.Is(err, ErrDeviceHung) {
		t.Fatalf("hung op: err = %v, want ErrDeviceHung", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang held the caller %v past its context", elapsed)
	}
	// The hang window has passed: the next op must succeed and the device
	// must still be routable (a recoverable fault, unlike a crash).
	if _, err := d.ExecGemm(context.Background(), tensor.GemmShape{M: 64, N: 64, K: 64}, 1, 2, 1); err != nil {
		t.Fatalf("op after hang window: %v", err)
	}
	if !d.Routable() {
		t.Fatalf("post-hang state = %s, want routable", d.State())
	}
}

func TestDeviceSlowFactorStretchesCycles(t *testing.T) {
	shape := tensor.GemmShape{M: 192, N: 160, K: 96}
	fast := newTestDevice(t, hw.A100(), DeviceConfig{Name: "fast"})
	slow := newTestDevice(t, hw.A100(), DeviceConfig{Name: "slow", DevFaults: sim.DeviceFaults{SlowFactor: 2}})
	rf, err := fast.ExecGemm(context.Background(), shape, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := slow.ExecGemm(context.Background(), shape, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cycles < 1.9*rf.Cycles {
		t.Fatalf("slow replica cycles %.0f not ~2x fast replica %.0f", rs.Cycles, rf.Cycles)
	}
	if rs.Checksum != rf.Checksum {
		t.Fatalf("slow replica changed numerics: %g vs %g", rs.Checksum, rf.Checksum)
	}
}

func TestDeviceBrownoutDegradesAndRecovers(t *testing.T) {
	d := newTestDevice(t, hw.A100(), DeviceConfig{
		Name:      "brown",
		DevFaults: sim.DeviceFaults{BrownoutFromOp: 1, BrownoutToOp: 12, BrownoutFactor: 0.5},
	})
	shape := tensor.GemmShape{M: 192, N: 160, K: 96}
	for i := 0; i < 11; i++ {
		if _, err := d.ExecGemm(context.Background(), shape, 1, 2, uint64(i)); err != nil {
			t.Fatalf("brownout op %d: %v", i, err)
		}
	}
	// Repeated derated observations should push the device degraded via the
	// health registry's bandwidth hysteresis.
	if d.State() != StateDegraded {
		t.Fatalf("state after sustained brownout = %s, want degraded (fp %q)", d.State(), d.reg.View().Fingerprint())
	}
	// Past the window, clean observations lift the derate eventually.
	for i := 0; i < 40 && d.State() != StateHealthy; i++ {
		if _, err := d.ExecGemm(context.Background(), shape, 1, 2, uint64(100+i)); err != nil {
			t.Fatalf("recovery op %d: %v", i, err)
		}
	}
	if d.State() != StateHealthy {
		t.Fatalf("state after brownout cleared = %s (fp %q), want healthy", d.State(), d.reg.View().Fingerprint())
	}
}

// TestGemmBitwiseAcrossDeviceClasses pins the invariant transparent failover
// rests on: the same GEMM planned and executed on different device classes
// (GPU vs NPU H, different PE counts and schedulers) produces bitwise-equal
// results, because every program partitions the same iteration space with
// sequential-K accumulation.
func TestGemmBitwiseAcrossDeviceClasses(t *testing.T) {
	gpu := newTestDevice(t, hw.A100(), DeviceConfig{Name: "gpu"})
	npu := newTestDevice(t, hw.Ascend910(), DeviceConfig{Name: "npu"})
	shapes := []tensor.GemmShape{
		{M: 96, N: 96, K: 64},
		{M: 192, N: 160, K: 96},
		{M: 300, N: 300, K: 300},
		{M: 37, N: 29, K: 131},
	}
	for _, shape := range shapes {
		a, err := gpu.ExecGemm(context.Background(), shape, 11, 22, 0)
		if err != nil {
			t.Fatalf("%v on gpu: %v", shape, err)
		}
		b, err := npu.ExecGemm(context.Background(), shape, 11, 22, 0)
		if err != nil {
			t.Fatalf("%v on npu: %v", shape, err)
		}
		if a.Checksum != b.Checksum {
			t.Fatalf("%v: checksum differs across classes: %g vs %g", shape, a.Checksum, b.Checksum)
		}
		for i := range a.Sample {
			if a.Sample[i] != b.Sample[i] {
				t.Fatalf("%v: sample[%d] differs across classes: %g vs %g", shape, i, a.Sample[i], b.Sample[i])
			}
		}
	}
}

func TestDeviceDegradedStateFromPEFaults(t *testing.T) {
	// A sticky per-PE fault streak should quarantine the PE and flip the
	// device healthy -> degraded; planning keeps working against H'.
	d := newTestDevice(t, hw.A100(), DeviceConfig{
		Name:   "sick",
		Faults: &sim.Faults{Seed: 7, StickyFaults: map[int]int{3: 50}},
	})
	shape := tensor.GemmShape{M: 192, N: 160, K: 96}
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; d.State() != StateDegraded; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("device never went degraded (fp %q)", d.reg.View().Fingerprint())
		}
		// Faulted runs surface as ErrExecFaulted until the registry
		// quarantines the flaky PE; both outcomes advance the streak.
		_, err := d.ExecGemm(context.Background(), shape, 1, 2, uint64(i))
		if err != nil && !errors.Is(err, ErrExecFaulted) {
			t.Fatalf("op %d: unexpected error %v", i, err)
		}
	}
	if fp := d.reg.View().Fingerprint(); fp == "" {
		t.Fatal("degraded device must expose a health fingerprint")
	}
	if _, err := d.ExecGemm(context.Background(), shape, 1, 2, 999); err != nil {
		t.Fatalf("degraded device must keep serving: %v", err)
	}
}
