package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/engine"
	"mikpoly/internal/graphrt"
	"mikpoly/internal/health"
	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/obs"
	"mikpoly/internal/plancache"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// State is a device's lifecycle stage. The legal transitions are
// starting → healthy ⇄ degraded → draining → dead, plus a crash edge from
// any live state straight to dead.
type State int32

const (
	StateStarting State = iota
	StateHealthy
	StateDegraded
	StateDraining
	StateDead
)

func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateDraining:
		return "draining"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Typed device errors. The dispatcher's failover logic keys on these: all of
// them mean "this attempt is lost, try another replica", and none of them
// should surface to a client while a capable device survives.
var (
	// ErrDeviceDown: the device is dead or closed and accepts no work.
	ErrDeviceDown = errors.New("fleet: device down")
	// ErrDeviceCrashed: the device died executing this very op.
	ErrDeviceCrashed = errors.New("fleet: device crashed")
	// ErrDeviceHung: the op sat in a hang window and only the context
	// cancellation (a hedge win or deadline) released it.
	ErrDeviceHung = errors.New("fleet: device hung")
	// ErrDeviceBusy: the device's command queue is full (load, not fault —
	// it does not feed the breaker).
	ErrDeviceBusy = errors.New("fleet: device queue full")
	// ErrDeviceDraining: the device is draining and takes no new work.
	ErrDeviceDraining = errors.New("fleet: device draining")
	// ErrExecFaulted: the run completed but reported unhealed faults.
	ErrExecFaulted = errors.New("fleet: execution reported unhealed faults")
)

// retryableOn reports whether err indicates a device-local failure another
// replica could absorb (as opposed to a caller cancellation or a bad request).
func retryableOn(err error) bool {
	return errors.Is(err, ErrDeviceDown) || errors.Is(err, ErrDeviceCrashed) ||
		errors.Is(err, ErrDeviceHung) || errors.Is(err, ErrDeviceBusy) ||
		errors.Is(err, ErrDeviceDraining) || errors.Is(err, ErrExecFaulted)
}

// DeviceConfig tunes one Device.
type DeviceConfig struct {
	// Name identifies the device in routing, events, and metrics.
	Name string
	// QueueDepth bounds the serialized command queue (<= 0 selects 32).
	QueueDepth int
	// PlanAhead and PlanTimeout configure the device's graph runtime.
	PlanAhead   int
	PlanTimeout time.Duration
	// Faults optionally injects PE-level degradation into every simulated
	// run on this device (the single-device chaos knob).
	Faults *sim.Faults
	// DevFaults optionally injects a device-level fault domain.
	DevFaults sim.DeviceFaults
	// Events receives lifecycle and fault events (nil = discard).
	Events *EventLog
	// Obs threads tracing into the device's graph runtime.
	Obs *obs.Obs
	// PlanSnapshot optionally warm-starts the device's program cache. A
	// snapshot that does not match the device's library (hash, planner
	// version, hardware) is rejected with an event and the device plans
	// online — a fleet mixes classes, so at most one class's devices match
	// any given snapshot and rejection is the expected case elsewhere.
	PlanSnapshot *plancache.Snapshot
}

// GemmResult is one fleet GEMM execution: the numeric digest plus routing
// forensics. Checksum and Sample are bitwise-stable across device classes —
// every program partitions the same iteration space with sequential-K
// accumulation — which is what makes transparent failover numerically safe.
type GemmResult struct {
	Shape    tensor.GemmShape
	Device   string
	Degraded bool
	Attempts int
	Cycles   float64
	Checksum float64
	Sample   []float32
}

// job is one queued command. The worker is the only writer of v/err and
// closes done exactly once.
type job struct {
	ctx  context.Context
	run  func(ctx context.Context, op int64) (any, error)
	v    any
	err  error
	done chan struct{}
}

// Device is one simulated accelerator replica: hardware model, micro-kernel
// library, compiler with its fingerprint-keyed plan cache, health registry,
// and graph runtime, all behind a serialized command queue (one op executes
// at a time, as on a real accelerator stream).
type Device struct {
	name   string
	class  string
	h      hw.Hardware
	lib    *tune.Library
	comp   *core.Compiler
	reg    *health.Registry
	rt     *graphrt.Runtime
	faults *sim.Faults
	dev    sim.DeviceFaults
	events *EventLog

	planTimeout time.Duration

	state atomic.Int32
	queue chan *job
	quit  chan struct{}
	wg    sync.WaitGroup

	mu     sync.Mutex // guards closed against concurrent submit
	closed bool

	outstanding atomic.Int64 // queued + executing
	started     atomic.Int64 // op ordinals handed out (fault triggers key on this)
	completed   atomic.Int64
	failed      atomic.Int64
}

// NewDevice builds a device over a tuned micro-kernel library. The library
// may be shared between replicas of the same hardware class — compilers,
// caches, and health registries are per-device, the (immutable) library is
// not. Call Start before submitting work.
func NewDevice(lib *tune.Library, cfg DeviceConfig) *Device {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	name := cfg.Name
	if name == "" {
		name = lib.HW.Name
	}
	d := &Device{
		name:        name,
		class:       lib.HW.Name,
		h:           lib.HW,
		lib:         lib,
		faults:      cfg.Faults,
		dev:         cfg.DevFaults,
		events:      cfg.Events,
		planTimeout: cfg.PlanTimeout,
		queue:       make(chan *job, cfg.QueueDepth),
		quit:        make(chan struct{}),
	}
	d.reg = health.NewRegistry(lib.HW.NumPEs, health.Config{})
	d.comp = core.NewCompilerFromLibrary(lib, core.WithHealth(d.reg))
	if cfg.PlanSnapshot != nil {
		if n, err := d.comp.ImportSnapshot(cfg.PlanSnapshot); err != nil {
			d.events.Append(name, "plancache-reject", err.Error())
		} else {
			d.events.Append(name, "plancache-warm", fmt.Sprintf("warm-started %d cached programs", n))
		}
	}
	d.rt = graphrt.New(d.comp, graphrt.Config{
		PlanAhead:   cfg.PlanAhead,
		PlanTimeout: cfg.PlanTimeout,
		Health:      d.reg,
		Obs:         cfg.Obs,
	})
	d.rt.SetSimulator(func(h hw.Hardware, v health.View, tasks []sim.Task, salt uint64) sim.Result {
		return d.simulate(h, v, tasks, d.started.Load(), salt)
	})
	d.state.Store(int32(StateStarting))
	return d
}

// Name returns the device's routing name; Class its hardware class name.
func (d *Device) Name() string  { return d.name }
func (d *Device) Class() string { return d.class }

// Library returns the (immutable, possibly class-shared) micro-kernel
// library backing the device.
func (d *Device) Library() *tune.Library { return d.lib }

// Hardware returns the device's pristine hardware model.
func (d *Device) Hardware() hw.Hardware { return d.h }

// Health returns the device's health registry (never nil).
func (d *Device) Health() *health.Registry { return d.reg }

// State returns the current lifecycle state.
func (d *Device) State() State { return State(d.state.Load()) }

// Routable reports whether the dispatcher may send this device new work.
func (d *Device) Routable() bool {
	s := d.State()
	return s == StateHealthy || s == StateDegraded
}

// Outstanding is the queued-plus-executing op count (the load signal).
func (d *Device) Outstanding() int64 { return d.outstanding.Load() }

// Start launches the serialized worker and flips starting → healthy.
func (d *Device) Start() {
	if !d.state.CompareAndSwap(int32(StateStarting), int32(StateHealthy)) {
		return
	}
	d.events.Append(d.name, "state", "starting -> healthy")
	d.wg.Add(1)
	go d.loop()
}

// Close stops the worker, failing queued work with ErrDeviceDown, and waits
// for it to exit. Safe to call more than once.
func (d *Device) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.wg.Wait()
		return
	}
	d.closed = true
	close(d.quit)
	d.mu.Unlock()
	d.wg.Wait()
}

// StartDrain flips a live device to draining: no new work is admitted, and
// the device transitions to dead once the queue runs dry.
func (d *Device) StartDrain() bool {
	for {
		s := d.State()
		if s != StateHealthy && s != StateDegraded {
			return false
		}
		if d.state.CompareAndSwap(int32(s), int32(StateDraining)) {
			d.events.Append(d.name, "state", s.String()+" -> draining")
			d.maybeFinishDrain()
			return true
		}
	}
}

// maybeFinishDrain completes draining → dead once no work remains.
func (d *Device) maybeFinishDrain() {
	if d.State() == StateDraining && d.outstanding.Load() == 0 {
		if d.state.CompareAndSwap(int32(StateDraining), int32(StateDead)) {
			d.events.Append(d.name, "state", "draining -> dead (drained)")
		}
	}
}

// refreshHealthState syncs healthy ⇄ degraded with the health registry's
// fingerprint after each op. Draining and dead are terminal for routing and
// never overwritten here.
func (d *Device) refreshHealthState() {
	want := StateHealthy
	if d.reg.View().Fingerprint() != "" {
		want = StateDegraded
	}
	for {
		s := d.State()
		if s != StateHealthy && s != StateDegraded || s == want {
			return
		}
		if d.state.CompareAndSwap(int32(s), int32(want)) {
			d.events.Append(d.name, "state", s.String()+" -> "+want.String())
			return
		}
	}
}

// loop is the serialized worker: one op at a time, in submission order.
func (d *Device) loop() {
	defer d.wg.Done()
	for {
		select {
		case j := <-d.queue:
			d.runJob(j)
		case <-d.quit:
			for {
				select {
				case j := <-d.queue:
					d.finish(j, nil, ErrDeviceDown)
				default:
					return
				}
			}
		}
	}
}

// runJob executes one queued op, applying the device-level fault domain.
func (d *Device) runJob(j *job) {
	if d.State() == StateDead {
		d.finish(j, nil, ErrDeviceDown)
		return
	}
	if err := j.ctx.Err(); err != nil {
		d.finish(j, nil, err)
		return
	}
	op := d.started.Add(1)
	if d.dev.CrashesAt(op) {
		d.crash(op)
		d.finish(j, nil, fmt.Errorf("%w at op %d", ErrDeviceCrashed, op))
		return
	}
	if d.dev.HangsAt(op) {
		d.events.Append(d.name, "hang", fmt.Sprintf("op %d blocked", op))
		// The op never completes; only the caller's context releases the
		// stream. The hedge path upstream is what makes this survivable.
		<-j.ctx.Done()
		d.finish(j, nil, fmt.Errorf("%w at op %d: %v", ErrDeviceHung, op, j.ctx.Err()))
		d.maybeFinishDrain()
		return
	}
	v, err := j.run(j.ctx, op)
	d.finish(j, v, err)
	d.refreshHealthState()
	d.maybeFinishDrain()
}

// crash transitions the device to dead and fails everything queued.
func (d *Device) crash(op int64) {
	d.state.Store(int32(StateDead))
	d.events.Append(d.name, "crash", fmt.Sprintf("device died at op %d", op))
	for {
		select {
		case q := <-d.queue:
			d.finish(q, nil, ErrDeviceDown)
		default:
			return
		}
	}
}

// finish completes a job exactly once and settles the counters.
func (d *Device) finish(j *job, v any, err error) {
	j.v, j.err = v, err
	if err != nil {
		d.failed.Add(1)
	} else {
		d.completed.Add(1)
	}
	d.outstanding.Add(-1)
	close(j.done)
}

// submit enqueues a command and waits for its result. Rejections (down,
// draining, full queue) are immediate; once queued, the result is always
// delivered — if ctx expires while queued, the worker observes the dead
// context and fails the job promptly.
func (d *Device) submit(ctx context.Context, run func(ctx context.Context, op int64) (any, error)) (any, error) {
	switch d.State() {
	case StateHealthy, StateDegraded:
	case StateDraining:
		return nil, ErrDeviceDraining
	default:
		return nil, ErrDeviceDown
	}
	j := &job{ctx: ctx, run: run, done: make(chan struct{})}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrDeviceDown
	}
	select {
	case d.queue <- j:
		d.outstanding.Add(1)
		d.mu.Unlock()
	default:
		d.mu.Unlock()
		return nil, ErrDeviceBusy
	}
	<-j.done
	return j.v, j.err
}

// ExecGemm plans (against this device's current health view, through its
// fingerprint-keyed cache) and executes one GEMM on deterministic operands.
// salt distinguishes dispatcher attempts so transient injected faults can
// clear on failover or retry.
func (d *Device) ExecGemm(ctx context.Context, shape tensor.GemmShape, seedA, seedB, salt uint64) (GemmResult, error) {
	v, err := d.submit(ctx, func(ctx context.Context, op int64) (any, error) {
		return d.execGemm(ctx, op, shape, seedA, seedB, salt)
	})
	if err != nil {
		return GemmResult{Shape: shape, Device: d.name}, err
	}
	return v.(GemmResult), nil
}

func (d *Device) execGemm(ctx context.Context, op int64, shape tensor.GemmShape, seedA, seedB, salt uint64) (any, error) {
	pctx := ctx
	var cancel context.CancelFunc = func() {}
	if d.planTimeout > 0 {
		pctx, cancel = context.WithTimeout(ctx, d.planTimeout)
	}
	prog, degraded, err := d.comp.PlanOrFallback(pctx, shape)
	cancel()
	if err != nil {
		return nil, err
	}

	// Simulated execution under the device's (possibly degraded) view, with
	// the outcome fed back so GEMM traffic drives fault classification.
	h := d.h
	view := d.reg.View()
	h = view.Apply(h)
	res := d.simulate(h, view, prog.Tasks(h), op, salt)
	d.reg.ObserveResult(view, res)
	if res.FaultedTasks > 0 || res.StrandedTasks > 0 {
		return nil, fmt.Errorf("%w: %d faulted, %d stranded on %s",
			ErrExecFaulted, res.FaultedTasks, res.StrandedTasks, d.name)
	}

	a := tensor.RandomMatrix(shape.M, shape.K, seedA)
	b := tensor.RandomMatrix(shape.K, shape.N, seedB)
	out, err := engine.Execute(prog, a, b)
	if err != nil {
		return nil, err
	}
	var sum float64
	for _, x := range out.Data {
		sum += float64(x)
	}
	return GemmResult{
		Shape:    shape,
		Device:   d.name,
		Degraded: degraded,
		Cycles:   res.Cycles,
		Checksum: sum,
		Sample: []float32{
			out.At(0, 0),
			out.At(0, out.Cols-1),
			out.At(out.Rows-1, 0),
			out.At(out.Rows-1, out.Cols-1),
		},
	}, nil
}

// ExecModel runs a model graph through this device's graph runtime (stage
// recovery ladder included). Residual faulted tasks surface as ErrExecFaulted
// so the dispatcher can fail the attempt over.
func (d *Device) ExecModel(ctx context.Context, g nn.Graph, salt uint64) (graphrt.Report, error) {
	v, err := d.submit(ctx, func(ctx context.Context, op int64) (any, error) {
		rep, err := d.rt.ExecuteSalted(ctx, g, salt)
		if err != nil {
			var se *graphrt.StageError
			if errors.As(err, &se) {
				return nil, fmt.Errorf("%w: %v", ErrExecFaulted, err)
			}
			return nil, err
		}
		if rep.FaultedTasks > 0 {
			return nil, fmt.Errorf("%w: %d residual faulted tasks on %s",
				ErrExecFaulted, rep.FaultedTasks, d.name)
		}
		return rep, nil
	})
	if err != nil {
		return graphrt.Report{}, err
	}
	return v.(graphrt.Report), nil
}

// simulate runs a task batch under the device's PE-level fault config plus
// the op-windowed device-level domains (brownout, slow replica). It is both
// the direct GEMM path and the graph runtime's simulator seam, so model
// stages see identical degradation.
func (d *Device) simulate(h hw.Hardware, v health.View, tasks []sim.Task, op int64, salt uint64) sim.Result {
	var f sim.Faults
	inject := false
	if d.faults != nil {
		// Renumber per-PE fault entries onto the survivor indices of the
		// current health view, as the single-device serving layer does.
		f = v.RemapFaults(*d.faults)
		inject = true
	}
	if d.dev.BrownoutAt(op) && f.Brownout == nil {
		// Device-level brownouts derate whole ops: stretch one window
		// across the entire run.
		f.Brownout = &sim.Brownout{StartCycle: 0, Duration: sim.BrownoutAllRun, Factor: d.dev.BrownoutFactor}
		inject = true
	}
	var res sim.Result
	if !inject {
		res = sim.Run(h, tasks)
	} else {
		f.Salt += salt
		r, err := sim.RunWithFaults(h, tasks, f)
		if err != nil {
			// An unusable fault config degrades to the healthy simulation
			// rather than failing ops.
			r = sim.Run(h, tasks)
		}
		res = r
	}
	if s := d.dev.Slowdown(); s > 1 {
		res.Cycles *= s
		res.BusyPECycles *= s
		for i := range res.PEBusy {
			res.PEBusy[i] *= s
		}
	}
	return res
}

// DeviceSummary is the wire-format snapshot of one device for /healthz and
// the drain endpoint.
type DeviceSummary struct {
	Name        string  `json:"name"`
	Class       string  `json:"class"`
	State       string  `json:"state"`
	Breaker     string  `json:"breaker"`
	Fingerprint string  `json:"health_fingerprint,omitempty"`
	Outstanding int64   `json:"outstanding"`
	Started     int64   `json:"started"`
	Completed   int64   `json:"completed"`
	Failed      int64   `json:"failed"`
	Weight      float64 `json:"weight"`
}
