package fleet

import (
	"context"
	"errors"
	"testing"
	"time"

	"mikpoly/internal/hw"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
)

// newTestFleet builds and starts a dispatcher over devices with the given
// per-device fault domains (nil entries mean healthy). Hardware classes
// alternate A100/Ascend910 for heterogeneity unless homog is set.
func newTestFleet(t *testing.T, n int, faults []sim.DeviceFaults, cfg Config, homog bool) *Dispatcher {
	t.Helper()
	devices := make([]*Device, n)
	for i := 0; i < n; i++ {
		h := hw.A100()
		if !homog && i%2 == 1 {
			h = hw.Ascend910()
		}
		dc := DeviceConfig{Name: h.Name[:4] + "-" + string(rune('0'+i))}
		if i < len(faults) {
			dc.DevFaults = faults[i]
		}
		devices[i] = NewDevice(testLib(t, h), dc)
	}
	f := NewDispatcher(devices, cfg)
	f.Start()
	t.Cleanup(f.Close)
	return f
}

func fastCfg() Config {
	return Config{
		MaxAttempts:      6,
		HedgeAfter:       5 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Millisecond,
	}
}

func TestDispatcherSpreadsLoadAcrossReplicas(t *testing.T) {
	f := newTestFleet(t, 2, nil, fastCfg(), true)
	shape := tensor.GemmShape{M: 96, N: 96, K: 64}
	for i := 0; i < 8; i++ {
		if _, err := f.ExecGemm(context.Background(), shape, uint64(i+1), 2); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for _, s := range f.Summaries() {
		if s.Completed == 0 {
			t.Fatalf("replica %s served nothing; tie-break rotation is not spreading load: %+v", s.Name, f.Summaries())
		}
	}
}

func TestDispatcherFailsOverOnCrash(t *testing.T) {
	f := newTestFleet(t, 2, []sim.DeviceFaults{{CrashAtOp: 1}}, fastCfg(), false)
	shape := tensor.GemmShape{M: 96, N: 96, K: 64}
	var sawFailover bool
	for i := 0; i < 4; i++ {
		res, err := f.ExecGemm(context.Background(), shape, 1, 2)
		if err != nil {
			t.Fatalf("request %d: %v (a healthy replica survives, nothing may fail)", i, err)
		}
		if res.Attempts > 1 {
			sawFailover = true
		}
	}
	if !sawFailover {
		t.Fatal("the crash victim was never tried; rotation should have routed at least one primary to it")
	}
	crashed := f.devices[0]
	if crashed.State() != StateDead {
		t.Fatalf("crash victim state = %s, want dead", crashed.State())
	}
	if st := f.BreakerState(crashed.name); st != BreakerOpen {
		t.Fatalf("crash victim breaker = %s, want open (forceOpen on crash)", st)
	}
	if stats := f.DispatchStats(); stats.Failovers == 0 {
		t.Fatalf("no failovers recorded: %+v", stats)
	}
}

func TestDispatcherHedgesAroundHangAndProberReadmits(t *testing.T) {
	// Device 0 hangs for ops 1-2; device 1 is healthy. Whenever the hung
	// device is picked as primary, the hedge must fire and win; with a
	// threshold of 1 the first hedge opens its breaker and keeps live
	// traffic off it, so exactly one hang op remains for the prober.
	cfg := fastCfg()
	cfg.BreakerThreshold = 1
	cfg.ProbeTimeout = 20 * time.Millisecond
	f := newTestFleet(t, 2, []sim.DeviceFaults{{HangAtOp: 1, HangOps: 2}}, cfg, false)
	shape := tensor.GemmShape{M: 96, N: 96, K: 64}
	for i := 0; i < 6; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := f.ExecGemm(ctx, shape, 1, 2); err != nil {
			cancel()
			t.Fatalf("request %d: %v", i, err)
		}
		cancel()
	}
	stats := f.DispatchStats()
	if stats.Hedges == 0 {
		t.Fatalf("no hedges fired around the hung device: %+v", stats)
	}
	hung := f.devices[0]
	if st := f.BreakerState(hung.name); st != BreakerOpen {
		t.Fatalf("hung device breaker = %s, want open after a hedge strike", st)
	}
	if hung.State() == StateDead {
		t.Fatal("a hang is recoverable; the device must not be dead")
	}

	// First probe canary lands on the last hang op: it must time out and
	// keep the breaker open.
	time.Sleep(2 * time.Millisecond)
	if hung.started.Load() < 2 {
		if n := f.ProbeNow(context.Background()); n != 0 {
			t.Fatalf("probe into the hang window readmitted %d devices, want 0", n)
		}
		if st := f.BreakerState(hung.name); st != BreakerOpen {
			t.Fatalf("breaker after failed probe = %s, want open", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The hang window is now consumed: the next canary must readmit.
	if n := f.ProbeNow(context.Background()); n != 1 {
		t.Fatalf("ProbeNow readmitted %d devices, want 1", n)
	}
	if st := f.BreakerState(hung.name); st != BreakerClosed {
		t.Fatalf("breaker after successful probe = %s, want closed", st)
	}
	// The readmitted device receives traffic again. (Assert on ops started,
	// not completed: under the race detector an op can run slowly enough
	// that a hedge beats it, which is legitimate routing, not exclusion.)
	before := hung.started.Load()
	for i := 0; i < 4; i++ {
		if _, err := f.ExecGemm(context.Background(), shape, 1, 2); err != nil {
			t.Fatalf("post-readmit request %d: %v", i, err)
		}
	}
	if hung.started.Load() == before {
		t.Fatal("readmitted device received no traffic")
	}
}

func TestProbeFailureKeepsBreakerOpen(t *testing.T) {
	// Hang window wide enough that the probe canary itself hangs: the probe
	// must fail fast (its own timeout) and keep the breaker open.
	cfg := fastCfg()
	cfg.ProbeTimeout = 20 * time.Millisecond
	f := newTestFleet(t, 2, []sim.DeviceFaults{{HangAtOp: 1, HangOps: 1000}}, cfg, false)
	shape := tensor.GemmShape{M: 96, N: 96, K: 64}
	for i := 0; i < 6; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := f.ExecGemm(ctx, shape, 1, 2); err != nil {
			cancel()
			t.Fatalf("request %d: %v", i, err)
		}
		cancel()
	}
	if st := f.BreakerState(f.devices[0].name); st != BreakerOpen {
		t.Skipf("hung device was never primary (breaker %s); nothing to probe", st)
	}
	time.Sleep(2 * time.Millisecond)
	if n := f.ProbeNow(context.Background()); n != 0 {
		t.Fatalf("ProbeNow readmitted %d devices, want 0 (still hanging)", n)
	}
	if st := f.BreakerState(f.devices[0].name); st != BreakerOpen {
		t.Fatalf("breaker after failed probe = %s, want open", st)
	}
}

func TestDispatcherDrain(t *testing.T) {
	f := newTestFleet(t, 2, nil, fastCfg(), true)
	name := f.devices[0].name
	if err := f.Drain(name); err != nil {
		t.Fatalf("Drain(%q): %v", name, err)
	}
	if f.devices[0].State() != StateDead {
		t.Fatalf("drained idle device state = %s, want dead", f.devices[0].State())
	}
	if err := f.Drain(name); err == nil {
		t.Fatal("draining a dead device must error")
	}
	if err := f.Drain("nope"); err == nil {
		t.Fatal("draining an unknown device must error")
	}
	// The survivor keeps serving.
	shape := tensor.GemmShape{M: 96, N: 96, K: 64}
	for i := 0; i < 3; i++ {
		res, err := f.ExecGemm(context.Background(), shape, 1, 2)
		if err != nil {
			t.Fatalf("post-drain request %d: %v", i, err)
		}
		if res.Device != f.devices[1].name {
			t.Fatalf("request served by %s, want survivor %s", res.Device, f.devices[1].name)
		}
	}
}

func TestDispatcherNoDevices(t *testing.T) {
	f := newTestFleet(t, 2, []sim.DeviceFaults{{CrashAtOp: 1}, {CrashAtOp: 1}}, fastCfg(), true)
	shape := tensor.GemmShape{M: 96, N: 96, K: 64}
	// Burn both devices down. The first requests may fail over and crash
	// both replicas; once the whole fleet is dead every request must fail
	// with a typed error, not hang or panic.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := f.ExecGemm(context.Background(), shape, 1, 2)
		if err != nil {
			if !errors.Is(err, ErrNoDevices) && !errors.Is(err, ErrDeviceCrashed) && !errors.Is(err, ErrDeviceDown) {
				t.Fatalf("unexpected error class: %v", err)
			}
			if errors.Is(err, ErrNoDevices) {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet never reached the all-dead state")
		}
	}
	if _, err := f.ExecGemm(context.Background(), shape, 1, 2); !errors.Is(err, ErrNoDevices) {
		t.Fatalf("all-dead fleet: err = %v, want ErrNoDevices", err)
	}
}

func TestDegradedDeviceIsDeratedInRouting(t *testing.T) {
	f := newTestFleet(t, 2, nil, fastCfg(), true)
	// Manufacture degradation on device 0 via its health registry: quarantine
	// PEs by feeding death observations is slow; instead check the weight
	// math directly through Summaries after a brownout run.
	d := f.devices[0]
	d.dev = sim.DeviceFaults{BrownoutFromOp: 1, BrownoutToOp: 100, BrownoutFactor: 0.5}
	shape := tensor.GemmShape{M: 192, N: 160, K: 96}
	for i := 0; i < 10; i++ {
		if _, err := d.ExecGemm(context.Background(), shape, 1, 2, uint64(i)); err != nil {
			t.Fatalf("brownout op %d: %v", i, err)
		}
	}
	if d.State() != StateDegraded {
		t.Fatalf("device 0 state = %s, want degraded", d.State())
	}
	sums := f.Summaries()
	if sums[0].Weight >= sums[1].Weight {
		t.Fatalf("degraded device weight %.3f not derated below healthy %.3f", sums[0].Weight, sums[1].Weight)
	}
}

func TestParseSpec(t *testing.T) {
	entries, err := ParseSpec([]byte(`[{"hw":"a100","replicas":2},{"hw":"ascend910"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Replicas != 2 || entries[1].Replicas != 1 {
		t.Fatalf("unexpected entries: %+v", entries)
	}
	for _, bad := range []string{``, `[]`, `[{"hw":"tpu"}]`, `[{"hw":"a100","replicas":-1}]`, `[{"hw":"a100","replicas":100}]`} {
		if _, err := ParseSpec([]byte(bad)); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", bad)
		}
	}
}

func TestBuildDevices(t *testing.T) {
	entries, err := ParseSpec([]byte(`[{"hw":"a100","replicas":2},{"hw":"ascend910","replicas":1}]`))
	if err != nil {
		t.Fatal(err)
	}
	devices, err := BuildDevices(entries, testOpts(), DeviceConfig{}, []sim.DeviceFaults{{CrashAtOp: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(devices) != 3 {
		t.Fatalf("built %d devices, want 3", len(devices))
	}
	if devices[0].Name() != "a100-0" || devices[1].Name() != "a100-1" || devices[2].Name() != "ascend910-0" {
		t.Fatalf("unexpected names: %s %s %s", devices[0].Name(), devices[1].Name(), devices[2].Name())
	}
	if devices[0].dev.CrashAtOp != 5 || devices[1].dev.CrashAtOp != 0 {
		t.Fatal("per-index fault domains not applied")
	}
	// Replicas of one class share the library; compilers are private.
	if devices[0].comp.Library() != devices[1].comp.Library() {
		t.Fatal("same-class replicas must share the tuned library")
	}
	if devices[0].comp == devices[1].comp {
		t.Fatal("replicas must not share a compiler (plan caches are per-device)")
	}
	for _, d := range devices {
		d.Close()
	}
}
