package fleet

import (
	"encoding/json"
	"fmt"

	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/sim"
	"mikpoly/internal/tune"
)

// SpecEntry is one line of a fleet spec: a hardware class and a replica
// count. The JSON form is what `mikserve -fleet` accepts, e.g.
//
//	[{"hw":"a100","replicas":2},{"hw":"ascend910","replicas":1}]
type SpecEntry struct {
	// Name prefixes the replica names (default: the hw class name);
	// replicas are named "<name>-<i>".
	Name string `json:"name,omitempty"`
	// HW is the hardware class: a100, a100cuda, or ascend910.
	HW string `json:"hw"`
	// Replicas is the device count for this class (default 1).
	Replicas int `json:"replicas,omitempty"`
}

// HardwareByName resolves the hardware-class names a fleet spec accepts.
func HardwareByName(name string) (hw.Hardware, error) {
	switch name {
	case "a100", "A100":
		return hw.A100(), nil
	case "a100cuda", "a100-cuda":
		return hw.A100CUDACores(), nil
	case "ascend910", "npu":
		return hw.Ascend910(), nil
	default:
		return hw.Hardware{}, fmt.Errorf("fleet: unknown hardware class %q (want a100, a100cuda, or ascend910)", name)
	}
}

// ParseSpec decodes and validates a JSON fleet spec.
func ParseSpec(data []byte) ([]SpecEntry, error) {
	var entries []SpecEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("fleet: bad spec: %w", err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("fleet: spec lists no devices")
	}
	total := 0
	for i := range entries {
		if _, err := HardwareByName(entries[i].HW); err != nil {
			return nil, err
		}
		if entries[i].Replicas == 0 {
			entries[i].Replicas = 1
		}
		if entries[i].Replicas < 0 {
			return nil, fmt.Errorf("fleet: negative replica count for %q", entries[i].HW)
		}
		if entries[i].Name == "" {
			entries[i].Name = entries[i].HW
		}
		total += entries[i].Replicas
	}
	const maxDevices = 64
	if total > maxDevices {
		return nil, fmt.Errorf("fleet: %d devices exceeds the %d-device limit", total, maxDevices)
	}
	return entries, nil
}

// BuildDevices materializes a spec into devices: one tuned micro-kernel
// library per hardware class (shared by its replicas through the process-wide
// library cache), one compiler + plan cache + health registry + runtime per
// replica. devFaults, when non-nil, assigns per-replica device-level fault
// domains by fleet index (the chaos knob); extra entries are ignored, missing
// ones default to healthy.
func BuildDevices(entries []SpecEntry, opt tune.Options, base DeviceConfig, devFaults []sim.DeviceFaults) ([]*Device, error) {
	var out []*Device
	k := 0
	for _, e := range entries {
		h, err := HardwareByName(e.HW)
		if err != nil {
			return nil, err
		}
		lib, err := core.SharedLibrary(h, opt)
		if err != nil {
			return nil, fmt.Errorf("fleet: tuning library for %s: %w", e.HW, err)
		}
		for i := 0; i < e.Replicas; i++ {
			cfg := base
			cfg.Name = fmt.Sprintf("%s-%d", e.Name, i)
			if k < len(devFaults) {
				if err := devFaults[k].Validate(); err != nil {
					return nil, err
				}
				cfg.DevFaults = devFaults[k]
			}
			out = append(out, NewDevice(lib, cfg))
			k++
		}
	}
	return out, nil
}
