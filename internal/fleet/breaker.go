package fleet

import (
	"sync"
	"time"
)

// BreakerState is the per-device three-state circuit automaton, the
// device-level generalization of the serving layer's per-model breaker.
// Where the serve breaker admits its own half-open probe from live traffic,
// the fleet breaker keeps live traffic off open devices entirely: only the
// dispatcher's prober sends canary work, so a recovering device is never
// rediscovered at a user request's expense.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// deviceBreaker tracks one device's consecutive-failure streak.
type deviceBreaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int
	openedAt  time.Time
	threshold int
	now       func() time.Time // seam for deterministic tests
}

func newDeviceBreaker(threshold int) *deviceBreaker {
	if threshold <= 0 {
		threshold = 3
	}
	return &deviceBreaker{threshold: threshold, now: time.Now}
}

// allows reports whether live traffic may be routed to the device.
func (b *deviceBreaker) allows() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerClosed
}

// current returns the state for summaries and metrics.
func (b *deviceBreaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// record feeds one attempt outcome. Returns true when this outcome tripped
// the breaker open. Outcomes observed while half-open belong to the prober
// and are ignored here.
func (b *deviceBreaker) record(ok bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		return false
	}
	if ok {
		b.state = BreakerClosed
		b.failures = 0
		return false
	}
	b.failures++
	if b.state == BreakerClosed && b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.failures = 0
		return true
	}
	return false
}

// beginProbe transitions open → half-open when the cooldown has elapsed,
// claiming the single probe slot. Returns false if the breaker is not open
// or still cooling down.
func (b *deviceBreaker) beginProbe(cooldown time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen || b.now().Sub(b.openedAt) < cooldown {
		return false
	}
	b.state = BreakerHalfOpen
	return true
}

// probeResult settles a half-open probe: success re-closes (readmitting the
// device), failure re-opens with a fresh cooldown.
func (b *deviceBreaker) probeResult(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerHalfOpen {
		return
	}
	if ok {
		b.state = BreakerClosed
		b.failures = 0
	} else {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}

// forceOpen trips the breaker regardless of streak (used when a device
// crashes outright: no point counting to the threshold). Returns true if the
// state actually changed.
func (b *deviceBreaker) forceOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		return false
	}
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	return true
}
