// Package kernel defines the fixed-size micro-kernels of MikPoly §3.3. A
// micro-kernel is an instantiation of the micro-kernel template K̃ — the
// innermost (offline) loops of the two-stage GEMM program template — with a
// concrete tile size (uM, uN, uK) and an internal schedule chosen by the
// offline auto-scheduler. Each kernel both
//
//   - executes numerically on the CPU (Execute), so polymerized programs can
//     be validated bit-for-bit against reference GEMM for any runtime shape,
//     and
//   - carries an analytic single-PE timing used by the simulator substrate
//     (PipelinedTask), standing in for the measured cost of the compiled
//     CUDA/CANN binary in the paper.
//
// All MicroKernel fields are comparable, so kernels are usable as map keys.
package kernel

import (
	"fmt"
	"hash/fnv"
	"math"

	"mikpoly/internal/hw"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
)

// Config holds the internal schedule knobs the offline auto-scheduler tunes
// for every tile size (the analog of TVM's schedule search over the
// CUTLASS-based template, §4).
type Config struct {
	// Stages is the software-pipeline depth (1 = no double buffering).
	// Deeper pipelines hide more load latency but multiply the M_local
	// footprint of the operand buffers.
	Stages int

	// Vec is the vectorization width of the epilogue/issue path; wider
	// vectors reduce per-instance issue overhead but must divide the
	// accumulator tile evenly.
	Vec int
}

// DefaultConfig is a safe middle-of-the-road schedule.
func DefaultConfig() Config { return Config{Stages: 2, Vec: 4} }

// MicroKernel is one fixed-size micro-kernel K ∈ S_K̃.
type MicroKernel struct {
	// UM, UN, UK are the tile sizes of the offline loops.
	UM, UN, UK int

	// Cfg is the internal schedule selected offline.
	Cfg Config

	// Premium is an efficiency multiplier for hand-tuned provenance:
	// 1.0 for MikPoly-generated kernels, >1 for vendor-library kernels
	// whose hand-written assembly beats compiler output at their sweet
	// spot. It never lifts efficiency above 1.
	Premium float64
}

// New returns a MikPoly-generated kernel with the given tile and schedule.
func New(um, un, uk int, cfg Config) MicroKernel {
	return MicroKernel{UM: um, UN: un, UK: uk, Cfg: cfg, Premium: 1}
}

// String formats the kernel like the paper: micro-kernel(uM, uN, uK).
func (k MicroKernel) String() string {
	return fmt.Sprintf("micro-kernel(%d,%d,%d)s%dv%d", k.UM, k.UN, k.UK, k.Cfg.Stages, k.Cfg.Vec)
}

// Footprint is the M_local staging working set in bytes: Stages copies of
// both operand tiles. The accumulator lives in the separate accumulator
// storage (AccumFootprint).
func (k MicroKernel) Footprint(h hw.Hardware) int {
	return (k.UM*k.UK + k.UK*k.UN) * h.InputBytes * k.Cfg.Stages
}

// AccumFootprint is the fp32 accumulator tile held in the register file /
// L0C buffer for the whole pipelined task.
func (k MicroKernel) AccumFootprint(h hw.Hardware) int {
	return k.UM * k.UN * h.OutputBytes
}

// Feasible reports whether the kernel is well-formed and fits M_local on h.
func (k MicroKernel) Feasible(h hw.Hardware) bool {
	if k.UM <= 0 || k.UN <= 0 || k.UK <= 0 {
		return false
	}
	if k.Cfg.Stages < 1 || k.Cfg.Stages > 4 {
		return false
	}
	switch k.Cfg.Vec {
	case 1, 2, 4, 8:
	default:
		return false
	}
	if k.UN%k.Cfg.Vec != 0 {
		return false
	}
	return k.Footprint(h) <= h.LocalMemBytes && k.AccumFootprint(h) <= h.AccumBytes
}

// roundUp returns n rounded up to a multiple of align.
func roundUp(n, align int) int { return (n + align - 1) / align * align }

// mmaUtil is the fraction of a matrix-unit tile doing useful work when a
// dimension is not a multiple of the unit's native granularity.
func mmaUtil(dim, align int) float64 {
	if align <= 1 {
		return 1
	}
	return float64(dim) / float64(roundUp(dim, align))
}

// jitter returns a deterministic pseudo-random multiplier in [0.96, 1.04]
// keyed by the kernel parameters and platform — the irreducible
// configuration-specific variation that makes offline auto-tuning
// non-trivial (two analytically identical schedules measure differently on
// real hardware).
func (k MicroKernel) jitter(h hw.Hardware) float64 {
	f := fnv.New64a()
	fmt.Fprintf(f, "%d/%d/%d/%d/%d/%s", k.UM, k.UN, k.UK, k.Cfg.Stages, k.Cfg.Vec, h.Name)
	u := f.Sum64()
	return 0.96 + 0.08*float64(u%(1<<20))/float64(1<<20)
}

// Efficiency is the fraction of a PE's peak FLOP rate this kernel sustains
// with its pipeline full. It combines:
//
//   - matrix-unit alignment waste (tiles not multiple of MMAAlign);
//   - pipeline feeding: small reduction tiles cannot keep the matrix unit
//     busy — the knee scales with PE width, so the DaVinci cube demands
//     larger tiles than a Tensor Core, which demands larger tiles than
//     CUDA cores;
//   - software-pipeline depth (Stages);
//   - local-memory pressure (footprints near capacity throttle occupancy);
//   - deterministic per-configuration jitter;
//   - the hand-tuning premium for vendor kernels.
func (k MicroKernel) Efficiency(h hw.Hardware) float64 {
	if !k.Feasible(h) {
		return 0
	}
	align := mmaUtil(k.UM, h.MMAAlign) * mmaUtil(k.UN, h.MMAAlign) * mmaUtil(k.UK, h.MMAAlign)

	ai := float64(k.UM) * float64(k.UN) * float64(k.UK) /
		(float64(k.UM)*float64(k.UK) + float64(k.UK)*float64(k.UN))
	knee := math.Max(1, h.FlopsPerCyclePE/128)
	pipe := ai / (ai + knee)

	stages := float64(k.Cfg.Stages) / (float64(k.Cfg.Stages) + 0.35)

	occ := 1.0
	pressure := math.Max(
		float64(k.Footprint(h))/float64(h.LocalMemBytes),
		float64(k.AccumFootprint(h))/float64(h.AccumBytes))
	if pressure > 0.5 {
		occ = 1 - 0.3*(pressure-0.5)/0.5
	}

	premium := k.Premium
	if premium <= 0 {
		premium = 1
	}
	return math.Min(1, align*pipe*stages*occ*k.jitter(h)*premium)
}

// InstanceComputeCycles is the busy time of one kernel instance on a PE:
// the matrix-unit time at the sustained efficiency plus the per-instance
// issue/epilogue overhead governed by the vector width.
func (k MicroKernel) InstanceComputeCycles(h hw.Hardware) float64 {
	eff := k.Efficiency(h)
	if eff <= 0 {
		return math.Inf(1)
	}
	mma := 2 * float64(k.UM) * float64(k.UN) * float64(k.UK) / (h.FlopsPerCyclePE * eff)
	issue := float64(k.UM) * float64(k.UN) / (16 * float64(k.Cfg.Vec))
	return mma + issue
}

// InstanceLoadBytes is the DRAM traffic of one instance: both operand tiles
// (the accumulator stays resident in M_local across the reduction loop,
// §3.3), discounted by the L2 reuse concurrent tasks get on shared operand
// bands.
func (k MicroKernel) InstanceLoadBytes(h hw.Hardware) float64 {
	return float64(k.UM*k.UK+k.UK*k.UN) * float64(h.InputBytes) / h.L2ReuseFactor
}

// RHSLoadBytes is the DRAM traffic of one instance whose left operand is
// already resident in M_local — a fused chain's intermediate strip — so only
// the right-hand tile streams from global memory, with the same L2 reuse
// discount as InstanceLoadBytes.
func (k MicroKernel) RHSLoadBytes(h hw.Hardware) float64 {
	return float64(k.UK*k.UN) * float64(h.InputBytes) / h.L2ReuseFactor
}

// StoreBytes is the one-time result write-back of a pipelined task.
func (k MicroKernel) StoreBytes(h hw.Hardware) float64 {
	return float64(k.UM*k.UN) * float64(h.OutputBytes)
}

// StartupCycles is the pipeline-fill cost: deeper pipelines amortize the
// fixed task launch latency better.
func (k MicroKernel) StartupCycles(h hw.Hardware) float64 {
	return h.TaskStartupCycles * 2 / (1 + float64(k.Cfg.Stages))
}

// PipelinedTask builds the simulator task for t instances of k executed in a
// reduction loop on one PE (t = t3 in the paper's notation).
func (k MicroKernel) PipelinedTask(h hw.Hardware, t int) sim.Task {
	if t < 1 {
		panic(fmt.Sprintf("kernel: pipelined task needs t >= 1, got %d", t))
	}
	return sim.Task{
		ComputeCycles: float64(t) * k.InstanceComputeCycles(h),
		MemBytes:      float64(t)*k.InstanceLoadBytes(h) + k.StoreBytes(h),
		StartupCycles: k.StartupCycles(h),
	}
}

// Execute accumulates dst += a×b for one kernel instance. dst must be
// UM×UN, a UM×UK, b UK×UN — callers guarantee this via local padding, so
// the kernel body itself has no boundary checks (the CUTLASS-style padding
// property of §3.4). The 4-wide register blocking mirrors the structure of
// the generated epilogue.
func (k MicroKernel) Execute(dst, a, b *tensor.Matrix) {
	if dst.Rows != k.UM || dst.Cols != k.UN || a.Rows != k.UM || a.Cols != k.UK ||
		b.Rows != k.UK || b.Cols != k.UN {
		panic(fmt.Sprintf("kernel %v: operand shapes dst=%dx%d a=%dx%d b=%dx%d",
			k, dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i := 0; i < k.UM; i++ {
		arow := a.Row(i)
		crow := dst.Row(i)
		for kk := 0; kk < k.UK; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Row(kk)
			j := 0
			for ; j+4 <= k.UN; j += 4 {
				crow[j] += av * brow[j]
				crow[j+1] += av * brow[j+1]
				crow[j+2] += av * brow[j+2]
				crow[j+3] += av * brow[j+3]
			}
			for ; j < k.UN; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}
