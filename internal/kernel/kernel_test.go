package kernel

import (
	"math"
	"testing"
	"testing/quick"

	"mikpoly/internal/hw"
	"mikpoly/internal/tensor"
)

func a100() hw.Hardware { return hw.A100() }

func TestFeasibility(t *testing.T) {
	h := a100()
	good := New(128, 128, 32, DefaultConfig())
	if !good.Feasible(h) {
		t.Fatal("128x128x32 must fit A100 local memory")
	}
	huge := New(512, 512, 512, DefaultConfig())
	if huge.Feasible(h) {
		t.Fatal("512^3 working set must not fit 192KiB")
	}
	if New(0, 16, 16, DefaultConfig()).Feasible(h) {
		t.Fatal("zero dim must be infeasible")
	}
	if New(16, 16, 16, Config{Stages: 5, Vec: 4}).Feasible(h) {
		t.Fatal("stages>4 must be infeasible")
	}
	if New(16, 16, 16, Config{Stages: 2, Vec: 3}).Feasible(h) {
		t.Fatal("vec=3 must be infeasible")
	}
	if New(16, 20, 16, Config{Stages: 2, Vec: 8}).Feasible(h) {
		t.Fatal("vec must divide uN")
	}
}

func TestFootprint(t *testing.T) {
	h := a100()
	k := New(64, 64, 32, Config{Stages: 2, Vec: 4})
	// operands: (64*32 + 32*64) * 2B * 2 stages = 16384 (staging only).
	if got := k.Footprint(h); got != 16384 {
		t.Fatalf("footprint = %d, want 16384", got)
	}
	// accumulator: 64*64 * 4B = 16384 in the register file.
	if got := k.AccumFootprint(h); got != 16384 {
		t.Fatalf("accumulator footprint = %d, want 16384", got)
	}
	huge := New(512, 512, 16, Config{Stages: 2, Vec: 4})
	if huge.Feasible(h) {
		t.Fatal("512x512 accumulator (1 MiB) must not fit the 256 KiB register file")
	}
}

func TestEfficiencyRanges(t *testing.T) {
	h := a100()
	k := New(128, 128, 32, DefaultConfig())
	e := k.Efficiency(h)
	if e <= 0.4 || e > 1 {
		t.Fatalf("efficiency of a good tile = %g, want (0.4, 1]", e)
	}
	if New(512, 512, 512, DefaultConfig()).Efficiency(h) != 0 {
		t.Fatal("infeasible kernel must report zero efficiency")
	}
}

func TestEfficiencyPrefersAlignedTiles(t *testing.T) {
	h := a100()
	aligned := New(128, 128, 32, DefaultConfig())
	ragged := New(120, 120, 24, Config{Stages: 2, Vec: 4})
	if aligned.Efficiency(h) <= ragged.Efficiency(h) {
		t.Fatalf("aligned %g should beat ragged %g", aligned.Efficiency(h), ragged.Efficiency(h))
	}
}

func TestEfficiencyAlignmentIrrelevantOnCUDACores(t *testing.T) {
	h := hw.A100CUDACores()
	// With MMAAlign=1 a ragged tile pays no alignment penalty; only the
	// smaller arithmetic intensity and jitter differ. Allow 15%.
	a := New(120, 120, 24, Config{Stages: 2, Vec: 4}).Efficiency(h)
	b := New(128, 128, 24, Config{Stages: 2, Vec: 4}).Efficiency(h)
	if math.Abs(a-b)/b > 0.15 {
		t.Fatalf("CUDA-core efficiencies diverge too much: %g vs %g", a, b)
	}
}

func TestEfficiencyKneeScalesWithPEWidth(t *testing.T) {
	// A small 16x16x16 tile should look much worse relative to a
	// 128x128x64 tile on the wide NPU cube than on narrow CUDA cores.
	small := Config{Stages: 2, Vec: 4}
	relNPU := New(16, 16, 16, small).Efficiency(hw.Ascend910()) /
		New(128, 128, 64, small).Efficiency(hw.Ascend910())
	relCUDA := New(16, 16, 16, small).Efficiency(hw.A100CUDACores()) /
		New(128, 128, 64, small).Efficiency(hw.A100CUDACores())
	if relNPU >= relCUDA {
		t.Fatalf("small tiles should be relatively worse on NPU: npu=%g cuda=%g", relNPU, relCUDA)
	}
}

func TestPremiumLiftsEfficiencyButCapsAtOne(t *testing.T) {
	h := a100()
	k := New(128, 128, 32, DefaultConfig())
	v := k
	v.Premium = 1.06
	if v.Efficiency(h) <= k.Efficiency(h) {
		t.Fatal("premium must lift efficiency")
	}
	v.Premium = 100
	if v.Efficiency(h) > 1 {
		t.Fatal("efficiency must cap at 1")
	}
}

func TestDeterministicJitter(t *testing.T) {
	h := a100()
	k := New(96, 128, 32, DefaultConfig())
	if k.Efficiency(h) != k.Efficiency(h) {
		t.Fatal("efficiency must be deterministic")
	}
	other := New(96, 128, 48, DefaultConfig())
	if k.Efficiency(h) == other.Efficiency(h) {
		t.Fatal("distinct kernels should not collide exactly (jitter)")
	}
}

func TestInstanceCosts(t *testing.T) {
	h := a100()
	k := New(128, 128, 32, DefaultConfig())
	if got, want := k.InstanceLoadBytes(h), float64((128*32+32*128)*2)/h.L2ReuseFactor; got != want {
		t.Fatalf("load bytes = %g, want %g", got, want)
	}
	if got, want := k.StoreBytes(h), float64(128*128*4); got != want {
		t.Fatalf("store bytes = %g, want %g", got, want)
	}
	c := k.InstanceComputeCycles(h)
	ideal := 2.0 * 128 * 128 * 32 / h.FlopsPerCyclePE
	if c < ideal {
		t.Fatalf("compute cycles %g below ideal %g", c, ideal)
	}
	if c > 10*ideal {
		t.Fatalf("compute cycles %g implausibly high vs ideal %g", c, ideal)
	}
}

func TestPipelinedTaskScalesWithT(t *testing.T) {
	h := a100()
	k := New(128, 128, 32, DefaultConfig())
	t1 := k.PipelinedTask(h, 1)
	t4 := k.PipelinedTask(h, 4)
	if math.Abs(t4.ComputeCycles-4*t1.ComputeCycles) > 1e-6 {
		t.Fatal("compute must scale linearly with t")
	}
	wantMem := 4*k.InstanceLoadBytes(h) + k.StoreBytes(h)
	if t4.MemBytes != wantMem {
		t.Fatalf("mem bytes = %g, want %g", t4.MemBytes, wantMem)
	}
	if t1.StartupCycles != t4.StartupCycles {
		t.Fatal("startup must be t-independent")
	}
}

func TestPipelinedTaskRejectsZeroT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(16, 16, 16, DefaultConfig()).PipelinedTask(a100(), 0)
}

func TestDeeperStagesReduceStartup(t *testing.T) {
	h := a100()
	s1 := New(64, 64, 32, Config{Stages: 1, Vec: 4}).StartupCycles(h)
	s4 := New(64, 64, 32, Config{Stages: 4, Vec: 4}).StartupCycles(h)
	if s4 >= s1 {
		t.Fatalf("deeper pipeline should reduce startup: s1=%g s4=%g", s1, s4)
	}
}

func TestExecuteMatchesReferenceGemm(t *testing.T) {
	k := New(8, 12, 4, Config{Stages: 2, Vec: 4})
	a := tensor.RandomMatrix(8, 4, 21)
	b := tensor.RandomMatrix(4, 12, 22)
	dst := tensor.NewMatrix(8, 12)
	k.Execute(dst, a, b)
	want := tensor.Gemm(a, b)
	if !tensor.AllClose(dst, want, 1e-5) {
		t.Fatal("kernel execution differs from reference GEMM")
	}
	// Accumulation: run again, expect doubling.
	k.Execute(dst, a, b)
	for i := 0; i < 8; i++ {
		for j := 0; j < 12; j++ {
			if d := float64(dst.At(i, j) - 2*want.At(i, j)); math.Abs(d) > 1e-4 {
				t.Fatalf("accumulation broken at (%d,%d)", i, j)
			}
		}
	}
}

func TestExecuteShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k := New(8, 8, 8, DefaultConfig())
	k.Execute(tensor.NewMatrix(8, 8), tensor.NewMatrix(8, 7), tensor.NewMatrix(8, 8))
}

// Property: for any feasible kernel and small t, the pipelined task is
// self-consistent: positive compute, mem >= store bytes, finite cost.
func TestPipelinedTaskProperty(t *testing.T) {
	h := a100()
	f := func(seed uint64) bool {
		um := 16 * (int(seed%8) + 1)
		un := 16 * (int(seed/8%8) + 1)
		uk := 16 * (int(seed/64%4) + 1)
		k := New(um, un, uk, Config{Stages: int(seed/256%3) + 1, Vec: []int{1, 2, 4, 8}[seed/1024%4]})
		if !k.Feasible(h) {
			return true
		}
		tk := k.PipelinedTask(h, int(seed/4096%7)+1)
		return tk.ComputeCycles > 0 && !math.IsInf(tk.ComputeCycles, 1) &&
			tk.MemBytes >= k.StoreBytes(h) && tk.StartupCycles >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: Execute on views of padded operands equals reference on the
// original region — the contract local padding relies on.
func TestExecutePaddedViewsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		um := int(seed%6)*4 + 4
		un := int(seed/6%6)*4 + 4
		uk := int(seed/36%6) + 1
		k := New(um, un, uk, Config{Stages: 2, Vec: 4})
		a := tensor.RandomMatrix(um+3, uk+2, seed|1)
		b := tensor.RandomMatrix(uk+2, un+1, seed|2)
		dst := tensor.NewMatrix(um, un)
		k.Execute(dst, a.View(0, 0, um, uk), b.View(0, 0, uk, un))
		want := tensor.Gemm(a.View(0, 0, um, uk).Clone(), b.View(0, 0, uk, un).Clone())
		return tensor.AllClose(dst, want, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: efficiency is monotone in the hand-tuning premium and bounded
// in (0, 1] for feasible kernels.
func TestEfficiencyPremiumMonotoneProperty(t *testing.T) {
	h := a100()
	f := func(seed uint64) bool {
		um := 16 * (int(seed%8) + 1)
		un := 16 * (int(seed/8%8) + 1)
		uk := 16 * (int(seed/64%4) + 1)
		k := New(um, un, uk, Config{Stages: int(seed/256%4) + 1, Vec: []int{1, 2, 4, 8}[seed/1024%4]})
		if !k.Feasible(h) {
			return true
		}
		base := k.Efficiency(h)
		if base <= 0 || base > 1 {
			return false
		}
		boosted := k
		boosted.Premium = 1.1
		return boosted.Efficiency(h) >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the pipelined-task cost at fair-share bandwidth is monotone in
// tile volume for aligned cubes (bigger tiles do strictly more work).
func TestTaskCostMonotoneInVolume(t *testing.T) {
	h := a100()
	prev := 0.0
	for _, d := range []int{16, 32, 48, 64, 96} {
		k := New(d, d, d, Config{Stages: 2, Vec: 4})
		if !k.Feasible(h) {
			break
		}
		task := k.PipelinedTask(h, 4)
		cost := task.StartupCycles + task.ComputeCycles + task.MemBytes/h.FairShareBandwidth()
		if cost <= prev {
			t.Fatalf("task cost not increasing at d=%d", d)
		}
		prev = cost
	}
}
