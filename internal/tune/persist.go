package tune

import (
	"encoding/json"
	"fmt"
	"io"

	"mikpoly/internal/hw"
	"mikpoly/internal/kernel"
	"mikpoly/internal/perfmodel"
)

// libraryJSON is the on-disk form of an offline-stage artifact: the device
// description the kernels were tuned for, the hyperparameters, and the
// kernels with their fitted models (aligned by index). The paper's
// equivalent is the directory of compiled micro-kernel binaries plus their
// performance-model coefficients, generated once per (operator, platform)
// and reused forever (§4).
type libraryJSON struct {
	FormatVersion int                  `json:"format_version"`
	HW            hw.Hardware          `json:"hardware"`
	Opts          Options              `json:"options"`
	Kernels       []kernel.MicroKernel `json:"kernels"`
	Models        []*perfmodel.Model   `json:"models"`
}

// formatVersion guards against loading artifacts from incompatible builds.
const formatVersion = 1

// Save writes the library as JSON.
func (l *Library) Save(w io.Writer) error {
	out := libraryJSON{
		FormatVersion: formatVersion,
		HW:            l.HW,
		Opts:          l.Opts,
		Kernels:       l.Kernels,
		Models:        make([]*perfmodel.Model, len(l.Kernels)),
	}
	for i, k := range l.Kernels {
		m := l.models[k]
		if m == nil {
			return fmt.Errorf("tune: kernel %v has no fitted model", k)
		}
		out.Models[i] = m
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Load restores a library saved with Save, validating device description and
// per-kernel feasibility so a corrupted or cross-device artifact cannot be
// used silently.
func Load(r io.Reader) (*Library, error) {
	var raw libraryJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("tune: decoding library: %w", err)
	}
	if raw.FormatVersion != formatVersion {
		return nil, fmt.Errorf("tune: library format %d, want %d", raw.FormatVersion, formatVersion)
	}
	if err := raw.HW.Validate(); err != nil {
		return nil, fmt.Errorf("tune: library hardware: %w", err)
	}
	if err := raw.Opts.Validate(); err != nil {
		return nil, fmt.Errorf("tune: library options: %w", err)
	}
	if len(raw.Kernels) == 0 {
		return nil, fmt.Errorf("tune: library has no kernels")
	}
	if len(raw.Kernels) != len(raw.Models) {
		return nil, fmt.Errorf("tune: %d kernels but %d models", len(raw.Kernels), len(raw.Models))
	}
	lib := &Library{
		HW:      raw.HW,
		Opts:    raw.Opts,
		Kernels: raw.Kernels,
		models:  make(map[kernel.MicroKernel]*perfmodel.Model, len(raw.Kernels)),
	}
	for i, k := range raw.Kernels {
		if !k.Feasible(raw.HW) {
			return nil, fmt.Errorf("tune: kernel %v infeasible on %s", k, raw.HW.Name)
		}
		if raw.Models[i] == nil {
			return nil, fmt.Errorf("tune: kernel %v has no model", k)
		}
		lib.models[k] = raw.Models[i]
	}
	lib.buildIndex()
	return lib, nil
}
