// Package tune implements MikPoly's offline stage S1 (§3.3, Algorithm 1
// lines 1–6): micro-kernel generation. From the GEMM micro-kernel template it
//
//  1. enumerates candidate tile sizes {16·i | i ∈ [1, n_gen]} per dimension,
//  2. auto-tunes the internal schedule (pipeline depth, vector width) of each
//     feasible candidate against the simulated PE — the stand-in for the
//     TVM/CUTLASS-template auto-scheduler,
//  3. ranks candidates by their average performance on synthetic test cases
//     with dimension sizes drawn from {2^i | i ∈ [0, n_syn]} using the
//     Pattern-I program structure, retaining the top n_mik, and
//  4. fits a g_predict performance model per retained kernel.
//
// The resulting Library is what the online polymerization stage consumes.
package tune

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"mikpoly/internal/hw"
	"mikpoly/internal/kernel"
	"mikpoly/internal/perfmodel"
	"mikpoly/internal/sim"
)

// Options are the offline-stage hyperparameters of §3.3. The paper's
// empirical setting is NGen=32, NSyn=12, NMik=40 (Fig. 13 studies their
// sensitivity).
type Options struct {
	// NGen bounds the tile-size grid: each dimension ranges over
	// {16·i | i ∈ [1, NGen]}.
	NGen int

	// NSyn bounds the synthetic workload sizes {2^i | i ∈ [0, NSyn]} used
	// to rank candidates.
	NSyn int

	// NMik is the number of top-ranked micro-kernels retained.
	NMik int

	// NPred is the largest pipelined-task instance count measured when
	// fitting g_predict (the paper's n_pred, 5120).
	NPred int
}

// DefaultOptions returns the paper's empirical hyperparameters.
func DefaultOptions() Options {
	return Options{NGen: 32, NSyn: 12, NMik: 40, NPred: 5120}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	switch {
	case o.NGen < 1:
		return fmt.Errorf("tune: NGen must be >= 1, got %d", o.NGen)
	case o.NSyn < 0:
		return fmt.Errorf("tune: NSyn must be >= 0, got %d", o.NSyn)
	case o.NMik < 1:
		return fmt.Errorf("tune: NMik must be >= 1, got %d", o.NMik)
	case o.NPred < 1:
		return fmt.Errorf("tune: NPred must be >= 1, got %d", o.NPred)
	}
	return nil
}

// Library is the offline-stage output: the retained fixed-size micro-kernels
// S_K̃ (rank order, best first) with their fitted performance models.
type Library struct {
	HW      hw.Hardware
	Opts    Options
	Kernels []kernel.MicroKernel
	models  map[kernel.MicroKernel]*perfmodel.Model

	// modelList is models re-indexed to align with Kernels, so the online
	// planner's inner loop resolves g_predict by array indexing instead of
	// hashing a 6-field struct key. Built by buildIndex at every library
	// construction site (Generate, Load, Evolve).
	modelList []*perfmodel.Model

	// hash is the stable content digest (see Hash), memoized by buildIndex
	// so concurrent readers never race on a lazy computation.
	hash string
}

// Hash returns a stable digest over the library's full content — hardware
// description, tuning options, kernels, and fitted performance models. Two
// libraries with the same hash plan identically, so the hash is the cache-key
// component that keeps programs planned against one library from being served
// against another (a retuned, refined, or reloaded library changes the hash).
// The digest is SHA-256 over the deterministic Save serialization (no maps,
// models aligned to Kernels order). Empty only for an unserializable library,
// which disables snapshot sharing rather than risking a false match.
func (l *Library) Hash() string { return l.hash }

// computeHash derives the content digest; see Hash.
func (l *Library) computeHash() string {
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		return ""
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// Model returns the fitted g_predict model for k, or nil if k is not in the
// library.
func (l *Library) Model(k kernel.MicroKernel) *perfmodel.Model { return l.models[k] }

// ModelAt returns the fitted model for Kernels[i], or nil when the index is
// out of range or the library predates indexing.
func (l *Library) ModelAt(i int) *perfmodel.Model {
	if i < 0 || i >= len(l.modelList) {
		return nil
	}
	return l.modelList[i]
}

// PredictAt is PredictTask for Kernels[i] by index — the planner hot path.
// It falls back to the map path (and from there to the analytic cost) when
// the index carries no model, so it stays a total function.
func (l *Library) PredictAt(i, t int) float64 {
	if m := l.ModelAt(i); m != nil {
		return m.Predict(t)
	}
	if i >= 0 && i < len(l.Kernels) {
		return l.PredictTask(l.Kernels[i], t)
	}
	panic(fmt.Sprintf("tune: PredictAt index %d outside library of %d kernels", i, len(l.Kernels)))
}

// buildIndex (re)derives modelList and the content hash from Kernels and
// models.
func (l *Library) buildIndex() {
	l.modelList = make([]*perfmodel.Model, len(l.Kernels))
	for i, k := range l.Kernels {
		l.modelList[i] = l.models[k]
	}
	l.hash = l.computeHash()
}

// WithHardware returns a view of the library re-targeted at hardware h,
// sharing the kernels and fitted models (the offline stage is not redone).
// This is how the online stage plans against a *degraded* abstraction
// H' = (P_multi − quarantined, M_local, derated M_global): per-PE tile
// feasibility and the g_predict fits depend on the PE itself, which
// quarantining does not change — only the PE count and global bandwidth the
// wave/cost terms see. The receiver is not modified.
func (l *Library) WithHardware(h hw.Hardware) *Library {
	out := *l
	out.HW = h
	// The hardware participates in the content digest, so the re-targeted
	// view must not inherit the base library's hash.
	out.hash = out.computeHash()
	return &out
}

// PredictTask returns g_predict(t, K̃, H) for a kernel in the library,
// falling back to the analytic fair-share cost for foreign kernels so that
// cost-model variants remain total functions.
func (l *Library) PredictTask(k kernel.MicroKernel, t int) float64 {
	if m := l.models[k]; m != nil {
		return m.Predict(t)
	}
	return MeasureTaskCost(l.HW, k, t)
}

// MeasureTaskCost is the offline "measurement": the cost of one pipelined
// task with t instances of k on a single PE receiving the fair bandwidth
// share B/|P| (§3.1). In the paper this is a hardware run; here it queries
// the simulator's task model directly.
func MeasureTaskCost(h hw.Hardware, k kernel.MicroKernel, t int) float64 {
	return sim.PipelinedTaskCycles(k.PipelinedTask(h, t), h.FairShareBandwidth())
}

// scheduleCandidates is the internal-schedule search grid of the offline
// auto-scheduler.
func scheduleCandidates() []kernel.Config {
	var out []kernel.Config
	for _, stages := range []int{1, 2, 3, 4} {
		for _, vec := range []int{1, 2, 4, 8} {
			out = append(out, kernel.Config{Stages: stages, Vec: vec})
		}
	}
	return out
}

// autoTuneTile picks the best internal schedule for one tile size by
// measuring a representative pipelined task (t=8) on the simulated PE, the
// analog of compiling and timing schedule variants.
func autoTuneTile(h hw.Hardware, um, un, uk int) (kernel.MicroKernel, bool) {
	best := kernel.MicroKernel{}
	bestCost := math.Inf(1)
	for _, cfg := range scheduleCandidates() {
		k := kernel.New(um, un, uk, cfg)
		if !k.Feasible(h) {
			continue
		}
		c := MeasureTaskCost(h, k, 8)
		if c < bestCost {
			bestCost = c
			best = k
		}
	}
	return best, !math.IsInf(bestCost, 1)
}

// SyntheticShapes returns the ranking workload: GEMM shapes with dimension
// sizes from {2^i | i ∈ [0, nsyn]}, subsampled on a stride-3 grid per
// dimension to keep the offline stage tractable.
func SyntheticShapes(nsyn int) [][3]int {
	var sizes []int
	for i := 0; i <= nsyn; i += 3 {
		sizes = append(sizes, 1<<i)
	}
	if last := 1 << nsyn; len(sizes) == 0 || sizes[len(sizes)-1] != last {
		sizes = append(sizes, last)
	}
	var shapes [][3]int
	for _, m := range sizes {
		for _, n := range sizes {
			for _, k := range sizes {
				shapes = append(shapes, [3]int{m, n, k})
			}
		}
	}
	return shapes
}

// patternICosts returns, for one kernel, the Pattern-I program cost on every
// synthetic shape: waves(t1·t2) × pipelined-task(t3) cycles for shape
// (t1·uM, t2·uN, t3·uK) with local padding.
func patternICosts(h hw.Hardware, k kernel.MicroKernel, shapes [][3]int) []float64 {
	// Hoist the per-instance costs out of the shape loop.
	instCompute := k.InstanceComputeCycles(h)
	instLoad := k.InstanceLoadBytes(h)
	store := k.StoreBytes(h)
	startup := k.StartupCycles(h)
	bw := h.FairShareBandwidth()
	pes := float64(h.NumPEs)

	costs := make([]float64, len(shapes))
	for i, s := range shapes {
		t1 := (s[0] + k.UM - 1) / k.UM
		t2 := (s[1] + k.UN - 1) / k.UN
		t3 := (s[2] + k.UK - 1) / k.UK
		tasks := float64(t1 * t2)
		waves := math.Ceil(tasks / pes)
		pipe := startup + math.Max(float64(t3)*instCompute, (float64(t3)*instLoad+store)/bw)
		costs[i] = waves * pipe
	}
	return costs
}

// rankAndPrune implements the RankAndPrune step of Algorithm 1: candidates
// are scored by their mean performance across the synthetic workloads,
// normalized per shape against the best candidate (so that tiny shapes do
// not drown out large ones), and the top nmik are retained. To guarantee the
// library covers the whole shape range, the per-shape winners — visited from
// the largest synthetic shape down — are granted up to half the slots first.
func rankAndPrune(candidates []kernel.MicroKernel, costs [][]float64, shapes [][3]int, nmik int) []kernel.MicroKernel {
	nShapes := len(shapes)
	best := make([]float64, nShapes)
	winner := make([]int, nShapes)
	for si := 0; si < nShapes; si++ {
		best[si] = math.Inf(1)
		for ci := range candidates {
			if c := costs[ci][si]; c < best[si] {
				best[si] = c
				winner[si] = ci
			}
		}
	}

	score := make([]float64, len(candidates))
	for ci := range candidates {
		var sum float64
		for si := 0; si < nShapes; si++ {
			sum += best[si] / costs[ci][si]
		}
		score[ci] = sum / float64(nShapes)
	}

	// Shape order: largest FLOPs first, so winner slots favor the shapes
	// where specialist kernels matter most.
	order := make([]int, nShapes)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa := float64(shapes[order[a]][0]) * float64(shapes[order[a]][1]) * float64(shapes[order[a]][2])
		fb := float64(shapes[order[b]][0]) * float64(shapes[order[b]][1]) * float64(shapes[order[b]][2])
		return fa > fb
	})

	taken := make(map[int]bool)
	var kept []int
	for _, si := range order {
		if len(kept) >= nmik/2 {
			break
		}
		if ci := winner[si]; !taken[ci] {
			taken[ci] = true
			kept = append(kept, ci)
		}
	}

	rest := make([]int, 0, len(candidates))
	for ci := range candidates {
		if !taken[ci] {
			rest = append(rest, ci)
		}
	}
	sort.SliceStable(rest, func(a, b int) bool { return score[rest[a]] > score[rest[b]] })
	for _, ci := range rest {
		if len(kept) >= nmik {
			break
		}
		kept = append(kept, ci)
	}

	// Final library order: by descending overall score.
	sort.SliceStable(kept, func(a, b int) bool { return score[kept[a]] > score[kept[b]] })
	out := make([]kernel.MicroKernel, len(kept))
	for i, ci := range kept {
		out[i] = candidates[ci]
	}
	return out
}

// Generate runs the full offline stage for hardware h.
func Generate(h hw.Hardware, opt Options) (*Library, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}

	shapes := SyntheticShapes(opt.NSyn)

	// Tile candidates are independent, so the auto-tuning sweep fans out
	// across cores (the paper's offline stage is likewise embarrassingly
	// parallel across kernels). Results are collected per grid slot and
	// compacted in grid order, keeping generation fully deterministic.
	type slot struct {
		k    kernel.MicroKernel
		cost []float64
		ok   bool
	}
	n := opt.NGen
	slots := make([]slot, n*n*n)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				for j := 1; j <= n; j++ {
					for l := 1; l <= n; l++ {
						k, ok := autoTuneTile(h, 16*i, 16*j, 16*l)
						if !ok {
							continue
						}
						idx := (i-1)*n*n + (j-1)*n + (l - 1)
						slots[idx] = slot{k: k, cost: patternICosts(h, k, shapes), ok: true}
					}
				}
			}
		}()
	}
	for i := 1; i <= n; i++ {
		rows <- i
	}
	close(rows)
	wg.Wait()

	var candidates []kernel.MicroKernel
	var costs [][]float64
	for _, s := range slots {
		if s.ok {
			candidates = append(candidates, s.k)
			costs = append(costs, s.cost)
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("tune: no feasible micro-kernels for %s with NGen=%d", h.Name, opt.NGen)
	}

	kept := rankAndPrune(candidates, costs, shapes, opt.NMik)

	lib := &Library{
		HW:      h,
		Opts:    opt,
		Kernels: kept,
		models:  make(map[kernel.MicroKernel]*perfmodel.Model, len(kept)),
	}
	for _, k := range kept {
		k := k
		lib.models[k] = perfmodel.Fit(func(t int) float64 {
			return MeasureTaskCost(h, k, t)
		}, opt.NPred)
	}
	lib.buildIndex()
	return lib, nil
}
