package tune

import (
	"fmt"
	"math"

	"mikpoly/internal/kernel"
	"mikpoly/internal/perfmodel"
)

// EvolveOptions configure the mutation-based refinement search — the analog
// of the evolutionary stage in TVM-style auto-schedulers, which escapes the
// seed grid by perturbing promising candidates.
type EvolveOptions struct {
	// Rounds is the number of hill-climbing rounds per retained kernel.
	Rounds int
	// Seed drives the deterministic mutation choices.
	Seed uint64
}

// DefaultEvolveOptions returns a budget that meaningfully improves small
// seed grids without rivaling the full grid's cost.
func DefaultEvolveOptions() EvolveOptions { return EvolveOptions{Rounds: 24, Seed: 1} }

// RefineStats reports the refinement outcome.
type RefineStats struct {
	// Improved counts kernels replaced by a better mutant.
	Improved int
	// Evals counts candidate measurements performed.
	Evals int
}

// mutRNG is a deterministic generator for mutation choices.
type mutRNG struct{ s uint64 }

func (r *mutRNG) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// mutate produces a neighbor of k: one tile dimension stepped by ±16 (or
// doubled/halved for long-range moves), or one schedule knob changed.
func mutate(k kernel.MicroKernel, r *mutRNG) kernel.MicroKernel {
	m := k
	switch r.next() % 8 {
	case 0:
		m.UM += 16
	case 1:
		m.UM = maxInt(16, m.UM-16)
	case 2:
		m.UN += 16
	case 3:
		m.UN = maxInt(16, m.UN-16)
	case 4:
		m.UK += 16
	case 5:
		m.UK = maxInt(16, m.UK-16)
	case 6:
		// Long-range move: double one dimension.
		switch r.next() % 3 {
		case 0:
			m.UM *= 2
		case 1:
			m.UN *= 2
		default:
			m.UK *= 2
		}
	default:
		m.Cfg.Stages = int(r.next()%4) + 1
		m.Cfg.Vec = []int{1, 2, 4, 8}[r.next()%4]
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Refine hill-climbs each retained kernel against the synthetic ranking
// workload, accepting mutants with a better Pattern-I score, then re-ranks
// the library and refits the performance models of changed kernels. With a
// small seed grid (low n_gen) refinement recovers most of the quality of the
// full grid at a fraction of the offline cost.
func Refine(lib *Library, opt EvolveOptions) (*Library, RefineStats, error) {
	if opt.Rounds < 1 {
		return nil, RefineStats{}, fmt.Errorf("tune: Rounds must be >= 1, got %d", opt.Rounds)
	}
	shapes := SyntheticShapes(lib.Opts.NSyn)
	rng := &mutRNG{s: opt.Seed | 1}
	var stats RefineStats

	// Each kernel is a specialist: it earns its library slot by winning
	// some synthetic shapes. Hill-climbing on a global objective would
	// drag every kernel toward the same generalist optimum; instead each
	// kernel refines on the shape subset it currently wins, preserving
	// the library's coverage while sharpening every specialist.
	allCosts := make([][]float64, len(lib.Kernels))
	for i, k := range lib.Kernels {
		allCosts[i] = patternICosts(lib.HW, k, shapes)
	}
	wonBy := make([][]int, len(lib.Kernels))
	for si := range shapes {
		best, bestCost := 0, math.Inf(1)
		for ki := range lib.Kernels {
			if c := allCosts[ki][si]; c < bestCost {
				bestCost = c
				best = ki
			}
		}
		wonBy[best] = append(wonBy[best], si)
	}

	scoreOn := func(k kernel.MicroKernel, subset []int) float64 {
		stats.Evals++
		costs := patternICosts(lib.HW, k, shapes)
		var sum float64
		for _, si := range subset {
			sum += math.Log(costs[si])
		}
		return -sum // lower cost → higher score
	}

	allIdx := make([]int, len(shapes))
	for i := range allIdx {
		allIdx[i] = i
	}

	refined := make([]kernel.MicroKernel, len(lib.Kernels))
	seen := make(map[kernel.MicroKernel]bool, len(lib.Kernels))
	for _, k := range lib.Kernels {
		seen[k] = true
	}
	for i, k := range lib.Kernels {
		subset := wonBy[i]
		if len(subset) == 0 {
			subset = allIdx
		}
		best, bestScore := k, scoreOn(k, subset)
		improved := false
		for round := 0; round < opt.Rounds; round++ {
			cand := mutate(best, rng)
			if !cand.Feasible(lib.HW) || seen[cand] {
				continue
			}
			if s := scoreOn(cand, subset); s > bestScore {
				seen[cand] = true
				best, bestScore = cand, s
				improved = true
			}
		}
		refined[i] = best
		if improved {
			stats.Improved++
		}
	}

	// Re-rank by the same normalized criterion the generator uses.
	costs := make([][]float64, len(refined))
	for i, k := range refined {
		costs[i] = patternICosts(lib.HW, k, shapes)
	}
	kept := rankAndPrune(refined, costs, shapes, len(refined))

	out := &Library{
		HW:      lib.HW,
		Opts:    lib.Opts,
		Kernels: kept,
		models:  make(map[kernel.MicroKernel]*perfmodel.Model, len(kept)),
	}
	for _, k := range kept {
		if m := lib.models[k]; m != nil {
			out.models[k] = m
			continue
		}
		k := k
		out.models[k] = perfmodel.Fit(func(t int) float64 {
			return MeasureTaskCost(lib.HW, k, t)
		}, lib.Opts.NPred)
	}
	out.buildIndex()
	return out, stats, nil
}
