package tune

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mikpoly/internal/hw"
)

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	orig, err := Generate(hw.A100(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lib.json")
	if err := SaveFile(orig, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.HW.Name != orig.HW.Name || len(loaded.Kernels) != len(orig.Kernels) {
		t.Fatal("library lost in round trip")
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after save, want just the library", len(entries))
	}
}

func TestSaveFileAtomicallyReplaces(t *testing.T) {
	lib, err := Generate(hw.A100(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lib.json")
	if err := os.WriteFile(path, []byte("stale garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(lib, path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("replaced artifact unreadable: %v", err)
	}
}

func TestLoadFileRejectsCorruption(t *testing.T) {
	lib, err := Generate(hw.A100(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lib.json")
	if err := SaveFile(lib, path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, data []byte, wantMsg string) {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "bad.json")
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadFile(p)
			if err == nil {
				t.Fatal("corrupted library accepted")
			}
			if !strings.Contains(err.Error(), wantMsg) {
				t.Fatalf("error %q does not mention %q", err, wantMsg)
			}
		})
	}

	// A single flipped bit in the payload fails the checksum.
	flipped := bytes.Clone(good)
	flipped[len(flipped)/2] ^= 0x40
	corrupt("bit flip", flipped, "checksum mismatch")

	// Truncation loses the trailer entirely (the common crash artifact
	// before SaveFile existed).
	corrupt("truncated", good[:len(good)/2], "missing integrity trailer")

	// Truncation inside the trailer corrupts the recorded hash.
	corrupt("torn trailer", good[:len(good)-10], "checksum mismatch")

	// A forged trailer over tampered JSON still fails: the checksum is
	// over the payload bytes, not the document semantics.
	tampered := bytes.Replace(good, []byte(`"format_version": 1`), []byte(`"format_version": 9`), 1)
	if bytes.Equal(tampered, good) {
		t.Fatal("tamper target not found")
	}
	corrupt("tampered payload", tampered, "checksum mismatch")
}

func TestLoadFileMissingFile(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
