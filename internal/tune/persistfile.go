package tune

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// checksumPrefix introduces the integrity trailer SaveFile appends after the
// JSON document. json.Decoder stops at the end of the first value, so the
// trailer is invisible to the stream-oriented Load; LoadFile verifies it.
const checksumPrefix = "#mikpoly-sha256:"

// SaveFile persists the library to path crash-safely: the artifact is
// written to a temporary file in the same directory, fsynced, and atomically
// renamed over path, so a crash mid-write can never leave a truncated
// library where a complete one is expected. A SHA-256 trailer over the JSON
// payload lets LoadFile detect bit rot and partial copies.
func SaveFile(l *Library, path string) error {
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		return err
	}
	sum := sha256.Sum256(buf.Bytes())
	fmt.Fprintf(&buf, "%s%s\n", checksumPrefix, hex.EncodeToString(sum[:]))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("tune: saving library: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("tune: saving library: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("tune: saving library: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("tune: saving library: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("tune: saving library: %w", err)
	}
	// Persist the rename itself: fsync the directory so the new name
	// survives a crash. Some filesystems refuse directory syncs; the data
	// is already durable, so that is not fatal.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile restores a library written by SaveFile, verifying the SHA-256
// trailer before decoding. Any corruption — truncation, bit flips, a missing
// trailer — is rejected with an error rather than silently loading a
// damaged artifact.
func LoadFile(path string) (*Library, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tune: loading library: %w", err)
	}
	i := bytes.LastIndex(data, []byte(checksumPrefix))
	if i < 0 {
		return nil, fmt.Errorf("tune: library %s: missing integrity trailer (truncated or not written by SaveFile)", path)
	}
	payload, trailer := data[:i], data[i+len(checksumPrefix):]
	want := string(bytes.TrimSpace(trailer))
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != want {
		return nil, fmt.Errorf("tune: library %s: checksum mismatch (artifact corrupted)", path)
	}
	lib, err := Load(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("tune: library %s: %w", path, err)
	}
	return lib, nil
}
