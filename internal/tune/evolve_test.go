package tune

import (
	"testing"

	"mikpoly/internal/hw"
	"mikpoly/internal/kernel"
)

func TestRefineValidatesOptions(t *testing.T) {
	lib, err := Generate(hw.A100(), Options{NGen: 2, NSyn: 3, NMik: 3, NPred: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Refine(lib, EvolveOptions{Rounds: 0}); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestRefineKeepsLibraryInvariants(t *testing.T) {
	lib, err := Generate(hw.A100(), Options{NGen: 4, NSyn: 9, NMik: 8, NPred: 128})
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := Refine(lib, DefaultEvolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Kernels) != len(lib.Kernels) {
		t.Fatalf("library size changed: %d -> %d", len(lib.Kernels), len(out.Kernels))
	}
	seen := map[kernel.MicroKernel]bool{}
	for _, k := range out.Kernels {
		if !k.Feasible(out.HW) {
			t.Fatalf("refined kernel %v infeasible", k)
		}
		if seen[k] {
			t.Fatalf("duplicate kernel %v after refinement", k)
		}
		seen[k] = true
		if out.Model(k) == nil {
			t.Fatalf("refined kernel %v lacks a model", k)
		}
	}
	if stats.Evals == 0 {
		t.Fatal("no candidates evaluated")
	}
}

func TestRefineDeterministic(t *testing.T) {
	lib, err := Generate(hw.A100(), Options{NGen: 4, NSyn: 6, NMik: 6, NPred: 64})
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := Refine(lib, EvolveOptions{Rounds: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Refine(lib, EvolveOptions{Rounds: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Kernels {
		if a.Kernels[i] != b.Kernels[i] {
			t.Fatal("refinement is not deterministic")
		}
	}
}

// The motivating property: refining a small seed grid escapes its tile-size
// bound (16·n_gen) — mutations reach tiles the grid could never generate.
func TestRefineEscapesSeedGrid(t *testing.T) {
	small := Options{NGen: 3, NSyn: 12, NMik: 10, NPred: 128} // grid caps tiles at 48
	lib, err := Generate(hw.A100(), small)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := Refine(lib, EvolveOptions{Rounds: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Improved == 0 {
		t.Fatal("refinement improved nothing from a tiny seed grid")
	}
	escaped := false
	for _, k := range out.Kernels {
		if k.UM > 48 || k.UN > 48 || k.UK > 48 {
			escaped = true
		}
	}
	if !escaped {
		t.Fatal("no refined kernel escaped the 48-wide seed grid")
	}
}

func TestMutateStaysOnTileGrid(t *testing.T) {
	r := &mutRNG{s: 99}
	k := kernel.New(64, 64, 64, kernel.DefaultConfig())
	for i := 0; i < 200; i++ {
		m := mutate(k, r)
		if m.UM%16 != 0 || m.UN%16 != 0 || m.UK%16 != 0 {
			t.Fatalf("mutation left the 16-grid: %v", m)
		}
		if m.UM < 16 || m.UN < 16 || m.UK < 16 {
			t.Fatalf("mutation produced degenerate tile: %v", m)
		}
	}
}
