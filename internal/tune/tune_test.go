package tune

import (
	"math"
	"testing"

	"mikpoly/internal/hw"
	"mikpoly/internal/kernel"
)

// smallOpts keeps unit tests fast while exercising the whole pipeline.
func smallOpts() Options { return Options{NGen: 8, NSyn: 9, NMik: 12, NPred: 256} }

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{NGen: 0, NSyn: 1, NMik: 1, NPred: 1},
		{NGen: 1, NSyn: -1, NMik: 1, NPred: 1},
		{NGen: 1, NSyn: 1, NMik: 0, NPred: 1},
		{NGen: 1, NSyn: 1, NMik: 1, NPred: 0},
	}
	for i, o := range bad {
		if o.Validate() == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	o := DefaultOptions()
	if o.NGen != 32 || o.NSyn != 12 || o.NMik != 40 || o.NPred != 5120 {
		t.Fatalf("defaults %+v do not match §3.3/§5.1", o)
	}
}

func TestSyntheticShapes(t *testing.T) {
	shapes := SyntheticShapes(12)
	// Stride-3 grid over 2^0..2^12 → sizes {1,8,64,512,4096} → 125 shapes.
	if len(shapes) != 125 {
		t.Fatalf("len = %d, want 125", len(shapes))
	}
	seen4096 := false
	for _, s := range shapes {
		for _, d := range s {
			if d == 4096 {
				seen4096 = true
			}
			if d < 1 || d > 4096 {
				t.Fatalf("size %d outside [1, 2^12]", d)
			}
		}
	}
	if !seen4096 {
		t.Fatal("max synthetic size missing")
	}
}

func TestGenerateSmall(t *testing.T) {
	lib, err := Generate(hw.A100(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Kernels) != 12 {
		t.Fatalf("retained %d kernels, want 12", len(lib.Kernels))
	}
	seen := map[kernel.MicroKernel]bool{}
	for _, k := range lib.Kernels {
		if !k.Feasible(lib.HW) {
			t.Fatalf("retained infeasible kernel %v", k)
		}
		if k.UM%16 != 0 || k.UN%16 != 0 || k.UK%16 != 0 {
			t.Fatalf("tile %v not on the 16-grid", k)
		}
		if k.UM > 16*8 || k.UN > 16*8 || k.UK > 16*8 {
			t.Fatalf("tile %v outside NGen grid", k)
		}
		if seen[k] {
			t.Fatalf("duplicate kernel %v", k)
		}
		seen[k] = true
		if lib.Model(k) == nil {
			t.Fatalf("kernel %v has no fitted model", k)
		}
	}
}

func TestGenerateCoversSmallAndLargeTiles(t *testing.T) {
	lib, err := Generate(hw.A100(), Options{NGen: 16, NSyn: 12, NMik: 24, NPred: 256})
	if err != nil {
		t.Fatal(err)
	}
	var minVol, maxVol float64
	minVol = math.Inf(1)
	for _, k := range lib.Kernels {
		v := float64(k.UM) * float64(k.UN) * float64(k.UK)
		if v < minVol {
			minVol = v
		}
		if v > maxVol {
			maxVol = v
		}
	}
	// The library must retain both specialists for large shapes (big
	// tiles) and for small shapes (small tiles); a 64× volume spread
	// indicates real diversity.
	if maxVol/minVol < 64 {
		t.Fatalf("library tile volumes too uniform: min=%g max=%g", minVol, maxVol)
	}
	if maxVol < 128*128*32 {
		t.Fatalf("no large tiles retained (max volume %g)", maxVol)
	}
}

func TestModelsMatchMeasurements(t *testing.T) {
	lib, err := Generate(hw.A100(), Options{NGen: 4, NSyn: 6, NMik: 5, NPred: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range lib.Kernels {
		for _, tt := range []int{1, 3, 7, 50, 511} {
			meas := MeasureTaskCost(lib.HW, k, tt)
			pred := lib.PredictTask(k, tt)
			if math.Abs(pred-meas)/meas > 0.05 {
				t.Fatalf("%v t=%d: predicted %g, measured %g", k, tt, pred, meas)
			}
		}
	}
}

func TestPredictTaskForeignKernelFallsBack(t *testing.T) {
	lib, err := Generate(hw.A100(), Options{NGen: 2, NSyn: 3, NMik: 2, NPred: 64})
	if err != nil {
		t.Fatal(err)
	}
	foreign := kernel.New(48, 48, 48, kernel.DefaultConfig())
	if lib.Model(foreign) != nil {
		t.Skip("foreign kernel unexpectedly in library")
	}
	want := MeasureTaskCost(lib.HW, foreign, 9)
	if got := lib.PredictTask(foreign, 9); got != want {
		t.Fatalf("fallback = %g, want %g", got, want)
	}
}

func TestGenerateNPUUsesBiggerTiles(t *testing.T) {
	// The Ascend cube unit is 4× wider than a Tensor Core, so the best
	// NPU kernels should have a larger average tile volume than GPU ones.
	gpu, err := Generate(hw.A100(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	npu, err := Generate(hw.Ascend910(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	maxVol := func(ks []kernel.MicroKernel) float64 {
		var v float64
		for _, k := range ks {
			if x := float64(k.UM) * float64(k.UN) * float64(k.UK); x > v {
				v = x
			}
		}
		return v
	}
	if maxVol(npu.Kernels) <= maxVol(gpu.Kernels) {
		t.Fatalf("largest NPU tile (%g) should exceed largest GPU tile (%g): 1MiB vs 192KiB M_local",
			maxVol(npu.Kernels), maxVol(gpu.Kernels))
	}
}

func TestGenerateInvalidInputs(t *testing.T) {
	if _, err := Generate(hw.A100(), Options{}); err == nil {
		t.Fatal("zero options must fail")
	}
	bad := hw.A100()
	bad.NumPEs = 0
	if _, err := Generate(bad, smallOpts()); err == nil {
		t.Fatal("invalid hardware must fail")
	}
}

func TestMeasureTaskCostMonotoneInT(t *testing.T) {
	h := hw.A100()
	k := kernel.New(128, 128, 32, kernel.DefaultConfig())
	prev := 0.0
	for tt := 1; tt <= 64; tt *= 2 {
		c := MeasureTaskCost(h, k, tt)
		if c <= prev {
			t.Fatalf("cost not increasing at t=%d", tt)
		}
		prev = c
	}
}

// Parallel generation must stay deterministic: two runs produce identical
// libraries kernel for kernel.
func TestGenerateDeterministicAcrossRuns(t *testing.T) {
	a, err := Generate(hw.A100(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(hw.A100(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Kernels) != len(b.Kernels) {
		t.Fatalf("library sizes differ: %d vs %d", len(a.Kernels), len(b.Kernels))
	}
	for i := range a.Kernels {
		if a.Kernels[i] != b.Kernels[i] {
			t.Fatalf("kernel %d differs across runs: %v vs %v", i, a.Kernels[i], b.Kernels[i])
		}
	}
}
