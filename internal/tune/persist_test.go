package tune

import (
	"bytes"
	"strings"
	"testing"

	"mikpoly/internal/hw"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, err := Generate(hw.A100(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.HW.Name != orig.HW.Name || loaded.Opts != orig.Opts {
		t.Fatal("metadata lost in round trip")
	}
	if len(loaded.Kernels) != len(orig.Kernels) {
		t.Fatalf("kernel count %d != %d", len(loaded.Kernels), len(orig.Kernels))
	}
	for i, k := range orig.Kernels {
		if loaded.Kernels[i] != k {
			t.Fatalf("kernel %d differs", i)
		}
		for _, tt := range []int{1, 7, 100, 250} {
			if got, want := loaded.PredictTask(k, tt), orig.PredictTask(k, tt); got != want {
				t.Fatalf("kernel %v t=%d: loaded predicts %g, original %g", k, tt, got, want)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":       "][",
		"wrong version":  `{"format_version": 99}`,
		"no kernels":     `{"format_version": 1, "hardware": {}, "options": {"NGen":1,"NSyn":1,"NMik":1,"NPred":1}}`,
		"empty document": `{}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadRejectsCrossDeviceKernels(t *testing.T) {
	// Save an NPU library (big tiles), then claim it is for a GPU: the
	// big kernels are infeasible on 192 KiB local memory and must be
	// rejected.
	npu, err := Generate(hw.Ascend910(), Options{NGen: 20, NSyn: 9, NMik: 8, NPred: 128})
	if err != nil {
		t.Fatal(err)
	}
	hasBig := false
	for _, k := range npu.Kernels {
		if !k.Feasible(hw.A100()) {
			hasBig = true
		}
	}
	if !hasBig {
		t.Skip("no NPU-only kernels generated; nothing to test")
	}
	var buf bytes.Buffer
	if err := npu.Save(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	doc = strings.Replace(doc, `"ascend-910a"`, `"nvidia-a100"`, 1)
	doc = strings.Replace(doc, `"LocalMemBytes": 1048576`, `"LocalMemBytes": 196608`, 1)
	if _, err := Load(strings.NewReader(doc)); err == nil {
		t.Fatal("cross-device artifact accepted")
	}
}

func TestSaveLoadPreservesRankOrder(t *testing.T) {
	orig, err := Generate(hw.A100(), Options{NGen: 4, NSyn: 6, NMik: 6, NPred: 64})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Kernels {
		if loaded.Kernels[i] != orig.Kernels[i] {
			t.Fatal("library order changed")
		}
	}
}
