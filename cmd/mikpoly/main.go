// Command mikpoly regenerates the paper's evaluation tables and figures on
// the simulator substrate.
//
// Usage:
//
//	mikpoly [-quick] [-list] [experiment ...]
//
// With no experiment arguments every experiment runs in paper order. The
// -quick flag subsamples the workload suites so the full set finishes in
// well under a minute; without it the complete paper-sized suites run
// (1599 GEMM cases, 5485 convolutions, 150 sentences per model, ...).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mikpoly/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "subsample workload suites for a fast run")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	scatterDir := flag.String("scatter", "", "write per-case scatter series (figs 6/7/10) into this directory")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mikpoly [-quick] [-list] [experiment ...]\n\nexperiments:\n")
		for _, e := range bench.Experiments() {
			fmt.Fprintf(os.Stderr, "  %s\n", e.ID)
		}
	}
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Println(e.ID)
		}
		return
	}

	var selected []bench.Experiment
	if args := flag.Args(); len(args) > 0 {
		for _, id := range args {
			e, ok := bench.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "mikpoly: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	} else {
		selected = bench.Experiments()
	}

	cfg := bench.Config{Quick: *quick, ScatterDir: *scatterDir}
	for _, e := range selected {
		start := time.Now()
		t, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mikpoly: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		t.Note("regenerated in %v (quick=%v)", time.Since(start).Round(time.Millisecond), *quick)
		t.WriteText(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, t); err != nil {
				fmt.Fprintf(os.Stderr, "mikpoly: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// writeCSV stores one table as <dir>/<id>.csv, creating the directory.
func writeCSV(dir string, t *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	t.WriteCSV(f)
	return f.Close()
}
