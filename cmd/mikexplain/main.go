// Command mikexplain shows what MikPoly's online stage does for one runtime
// GEMM shape: the candidate search, the chosen polymerization pattern and
// strategy, the per-region cost-model terms (Eq. 2), and the simulated
// execution compared against the best single-kernel program — a developer's
// view of Algorithm 1's On-the-Fly Polymerization.
//
// Usage:
//
//	mikexplain [-hw a100|a100-cuda|ascend910] [-lib artifact.json] M N K
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"mikpoly/internal/hw"
	"mikpoly/internal/poly"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mikexplain: ")
	var (
		hwName  = flag.String("hw", "a100", "target hardware: a100, a100-cuda, ascend910")
		libPath = flag.String("lib", "", "offline artifact from mikgen (default: generate in-process)")
		trace   = flag.Bool("trace", false, "print a per-PE execution timeline")
		splitK  = flag.Bool("splitk", false, "enable the split-K pattern extension")
	)
	flag.Parse()
	if flag.NArg() != 3 {
		fmt.Fprintln(os.Stderr, "usage: mikexplain [-hw ...] [-lib artifact.json] M N K")
		os.Exit(2)
	}
	dims := make([]int, 3)
	for i, a := range flag.Args() {
		v, err := strconv.Atoi(a)
		if err != nil || v < 1 {
			log.Fatalf("bad dimension %q", a)
		}
		dims[i] = v
	}
	shape := tensor.GemmShape{M: dims[0], N: dims[1], K: dims[2]}

	var lib *tune.Library
	if *libPath != "" {
		f, err := os.Open(*libPath)
		if err != nil {
			log.Fatal(err)
		}
		lib, err = tune.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var h hw.Hardware
		switch *hwName {
		case "a100":
			h = hw.A100()
		case "a100-cuda":
			h = hw.A100CUDACores()
		case "ascend910":
			h = hw.Ascend910()
		default:
			log.Fatalf("unknown hardware %q", *hwName)
		}
		var err error
		lib, err = tune.Generate(h, tune.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
	}
	h := lib.HW

	pl := poly.NewPlanner(lib)
	pl.EnableSplitK = *splitK
	prog, stats, err := pl.Plan(shape)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("shape %v on %s (%d PEs)\n", shape, h.Name, h.NumPEs)
	fmt.Printf("online search: %d candidates costed, %d anchors pruned, %v wall-clock\n",
		stats.Candidates, stats.PrunedAnchors, stats.Elapsed)
	fmt.Printf("selected pattern %s, %d region(s), estimated cost %.0f cycles\n\n",
		prog.Pattern, len(prog.Regions), prog.EstimatedCost)

	fmt.Printf("%-8s %-22s %-28s %6s %6s %6s %8s %12s\n",
		"region", "output block", "micro-kernel", "t1", "t2", "t3", "f_wave", "f_pipe")
	for i, rc := range poly.Explain(prog, lib) {
		r := rc.Region
		fmt.Printf("R%-7d [%d+%d)x[%d+%d)%8s %-28s %6d %6d %6d %8.0f %12.0f\n",
			i, r.M0, r.M, r.N0, r.N, "", r.Kern.String(), rc.T1, rc.T2, rc.T3, rc.Waves, rc.Pipe)
	}

	fmt.Printf("\n%s\n", prog.Sketch(48, 12))

	res := prog.Simulate(h)
	fmt.Printf("\nsimulated: %.0f cycles (%.1f TFLOPS, %.0f%% PE efficiency, %d tasks, %d waves)\n",
		res.Cycles, shape.FLOPs()/h.CyclesToSeconds(res.Cycles)/1e12,
		100*res.Efficiency(), res.NumTasks, res.Waves())

	single, err := pl.PlanPatternI(shape)
	if err != nil {
		log.Fatal(err)
	}
	sres := single.Simulate(h)
	fmt.Printf("best single-kernel program: %.0f cycles with %v (speedup %.2fx)\n",
		sres.Cycles, single.Regions[0].Kern, sres.Cycles/res.Cycles)

	if *trace {
		_, events := sim.RunTrace(h, prog.Tasks(h))
		fmt.Printf("\nexecution timeline (regions lettered in launch order):\n%s\n",
			sim.Timeline(events, h.NumPEs, 72, 16))
	}
}
