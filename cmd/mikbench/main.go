// Command mikbench measures a pinned benchmark suite and gates the result
// against a committed baseline. It is the CI perf jobs' engine and the local
// tool for refreshing the BENCH_*.json baselines.
//
// Five suites are available via -suite:
//
//   - planner (default): online-planner latency over BERT-style dynamic-
//     sequence-length and Llama-decode GEMM shapes → BENCH_planner.json;
//   - serve: goodput-under-SLO on synthetic multi-tenant LLM traffic through
//     the paged KV cache and scheduler → BENCH_serve.json;
//   - plancache: cold vs warm plans-before-first-hit through the persistent
//     plan-cache tier (self-gating; no baseline file);
//   - overload: surge survival — the same Poisson burst replayed with the
//     overload defenses (adaptive admission, deadline shedding, KV-pressure
//     preemption) on vs off (self-gating; no baseline file);
//   - fusion: whole-graph polymerization — fused GEMM→epilogue→GEMM chain
//     programs vs the per-op path → BENCH_fusion.json.
//
// Run a suite and write a fresh baseline:
//
//	go run ./cmd/mikbench -out BENCH_planner.json
//	go run ./cmd/mikbench -suite serve -out BENCH_serve.json
//
// Gate a working tree against the committed baseline (CI does this):
//
//	go run ./cmd/mikbench -baseline BENCH_planner.json -out bench-current.json
//	go run ./cmd/mikbench -suite serve -baseline BENCH_serve.json -out serve-current.json
//
// Exit status: 0 = suite ran and (if -baseline) the gate passed; 1 = the gate
// found regressions; 2 = the suite itself failed to run.
//
// Planner gate: latency is compared with -tolerance (default +15%);
// allocation counts may never increase; chosen programs, candidate counts and
// cycle costs must be bitwise identical to the baseline — those fields are
// machine-independent, so any drift means the planner's decisions changed,
// not that the runner was noisy. -slowdown N plans every shape N times per
// measured op, which exists to prove the gate trips (a -slowdown 2 run must
// fail a clean baseline).
//
// Serve gate: the replay clock is virtual (executed device cycles), so every
// gated field is exact. Decode digests must be bitwise identical to the
// baseline and between reuse-on/off runs, KV pages may never leak, p99
// decode-step latency must sit within each case's SLO bound, and
// goodput-under-SLO may drop at most -tolerance (default -10% for serve).
//
// Plancache gate (self-contained, no -baseline): a warm-started replica must
// plan 0 of the suite's hot shapes online, with every served program bitwise
// identical (program string + cost bits) to the cold-planned one, the
// snapshot file must round-trip losslessly, and a tampered library hash must
// reject cleanly with a working online replan.
//
// Overload gate (self-contained, no -baseline): per seed, goodput-under-SLO
// with the defenses on must be at least 2x the undefended run of the same
// surge, no run may leak a KV page, preempt→restore through a tight arena
// must reproduce the wide arena's decode digests bit for bit with every
// request completed, and a repeated defended replay must be bitwise
// identical. -seeds overrides the seed matrix (comma-separated).
//
// Fusion gate: fused execution must beat the unfused execution on simulated
// cycles for every case with the chain actually fused, fused and unfused
// numerics must produce bitwise-identical output digests, and (vs -baseline)
// the deterministic cycle numbers must match bit for bit with zero PlanChain
// allocation growth.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mikpoly/internal/bench"
	"mikpoly/internal/tune"
)

func main() {
	var (
		suite     = flag.String("suite", "planner", "benchmark suite to run: planner, serve, plancache or overload")
		out       = flag.String("out", "", "write the measured report to this file (JSON)")
		baseline  = flag.String("baseline", "", "compare against this baseline report and exit 1 on regression")
		quick     = flag.Bool("quick", false, "run the subsampled suite (tests and smoke runs)")
		minTime   = flag.Duration("mintime", 150*time.Millisecond, "minimum sampling window per repetition (planner)")
		repeats   = flag.Int("repeats", 3, "sampling repetitions per case (planner; minimum ns/op is reported)")
		tolerance = flag.Float64("tolerance", 0, "allowed fractional regression vs baseline (default 0.15 planner ns/op, 0.10 serve goodput)")
		slowdown  = flag.Int("slowdown", 1, "plan each shape this many times per op (planner gate-trip injection)")
		seeds     = flag.String("seeds", "", "comma-separated trace seeds (overload; default suite matrix)")
	)
	flag.Parse()

	switch *suite {
	case "serve":
		runServe(*out, *baseline, *quick, *tolerance)
		return
	case "plancache":
		runPlanCache(*out, *quick)
		return
	case "overload":
		runOverload(*out, *quick, *seeds)
		return
	case "fusion":
		runFusion(*out, *baseline, *quick)
		return
	case "planner":
	default:
		fmt.Fprintf(os.Stderr, "mikbench: unknown -suite %q (want planner, serve, plancache, overload or fusion)\n", *suite)
		os.Exit(2)
	}

	if *tolerance == 0 {
		*tolerance = 0.15
	}
	opts := bench.PlannerMeasureOpts{MinTime: *minTime, Repeats: *repeats, Slowdown: *slowdown}
	cases := bench.PlannerSuite(*quick)
	fmt.Fprintf(os.Stderr, "mikbench: measuring %d planner cases (mintime=%v repeats=%d slowdown=%d)\n",
		len(cases), *minTime, *repeats, *slowdown)
	start := time.Now()
	rep, err := bench.RunPlannerSuite(cases, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mikbench: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "mikbench: suite done in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-24s %12s %10s %10s %8s  %s\n", "case", "ns/op", "allocs/op", "bytes/op", "cands", "pattern")
	for _, c := range rep.Cases {
		fmt.Printf("%-24s %12.0f %10d %10d %8d  %s\n",
			c.Name, c.NsPerOp, c.AllocsPerOp, c.BytesPerOp, c.Candidates, c.Pattern)
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mikbench: marshal: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mikbench: write %s: %v\n", *out, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "mikbench: wrote %s\n", *out)
	}

	if *baseline == "" {
		return
	}
	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mikbench: read baseline: %v\n", err)
		os.Exit(2)
	}
	var base bench.PlannerBenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "mikbench: parse baseline %s: %v\n", *baseline, err)
		os.Exit(2)
	}
	regs, notes := bench.ComparePlanner(&base, rep, bench.PlannerCompareOpts{LatencyTolerance: *tolerance})
	for _, n := range notes {
		fmt.Fprintf(os.Stderr, "mikbench: note: %s\n", n)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "mikbench: FAIL — %d regression(s) vs %s:\n", len(regs), *baseline)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  - %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mikbench: PASS — within tolerances of %s (%d cases, latency tolerance %.0f%%)\n",
		*baseline, len(base.Cases), *tolerance*100)
}

// runFusion measures the whole-graph polymerization suite and applies its
// gates: the self-contained ones always (fused beats unfused, chains fused,
// bitwise numerics), the baseline-relative ones (bitwise cycle numbers, zero
// alloc growth) when -baseline is given.
func runFusion(out, baseline string, quick bool) {
	fmt.Fprintf(os.Stderr, "mikbench: running fusion suite (quick=%v)\n", quick)
	start := time.Now()
	rep, regs, err := bench.RunFusionSuite(quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mikbench: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "mikbench: suite done in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Print(bench.FusionSummary(rep))

	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mikbench: marshal: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mikbench: write %s: %v\n", out, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "mikbench: wrote %s\n", out)
	}

	if baseline != "" {
		data, err := os.ReadFile(baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mikbench: read baseline: %v\n", err)
			os.Exit(2)
		}
		var base bench.FusionBenchReport
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "mikbench: parse baseline %s: %v\n", baseline, err)
			os.Exit(2)
		}
		// CompareFusion re-applies the self-contained gates, so its result
		// replaces (not extends) the suite's own checks — no duplicates.
		more, notes := bench.CompareFusion(&base, rep)
		regs = more
		for _, n := range notes {
			fmt.Fprintf(os.Stderr, "mikbench: note: %s\n", n)
		}
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "mikbench: FAIL — %d fusion regression(s):\n", len(regs))
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  - %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mikbench: PASS — fused chains beat the per-op path on all %d cases, %d numerics cases bitwise\n",
		len(rep.Cases), len(rep.Numerics))
}

// runPlanCache runs the self-gating plan-cache warm-start suite: the gate
// quantities (online-plan counts, program fingerprints) are exact by
// construction, so there is no baseline file to compare against.
func runPlanCache(out string, quick bool) {
	fmt.Fprintf(os.Stderr, "mikbench: running plancache suite (quick=%v)\n", quick)
	start := time.Now()
	rep, regs, err := bench.RunPlanCacheSuite(quick, tune.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mikbench: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "mikbench: suite done in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("library %s: cold plans %d, snapshot entries %d, imported %d, warm plans %d\n",
		rep.LibraryHash[:12], rep.ColdPlans, rep.SnapshotSize, rep.Imported, rep.WarmPlans)
	fmt.Printf("%-24s %8s %8s\n", "case", "bitwise", "warmplan")
	for _, c := range rep.Cases {
		fmt.Printf("%-24s %8v %8v\n", c.Name, c.Bitwise, c.WarmPlanned)
	}

	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mikbench: marshal: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mikbench: write %s: %v\n", out, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "mikbench: wrote %s\n", out)
	}

	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "mikbench: FAIL — %d plan-cache regression(s):\n", len(regs))
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  - %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mikbench: PASS — warm replica served %d hot shapes with 0 online plans, all bitwise-identical\n",
		len(rep.Cases))
}

// runOverload replays the surge suite and applies its self-contained gates:
// defended goodput >= 2x undefended, zero KV leaks, bitwise preempt→restore,
// deterministic replay.
func runOverload(out string, quick bool, seedList string) {
	var seeds []uint64
	if seedList != "" {
		for _, part := range strings.Split(seedList, ",") {
			s, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mikbench: bad -seeds entry %q: %v\n", part, err)
				os.Exit(2)
			}
			seeds = append(seeds, s)
		}
	}
	fmt.Fprintf(os.Stderr, "mikbench: running overload suite (quick=%v)\n", quick)
	start := time.Now()
	rep, regs, err := bench.RunOverloadSuite(quick, seeds, bench.ServeMeasureOpts{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mikbench: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "mikbench: suite done in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-6s %14s %14s %7s %6s %9s %8s %8s %6s\n",
		"seed", "defended t/s", "undefended", "ratio", "sheds", "preempts", "bitwise", "determ", "leaks")
	for _, s := range rep.Seeds {
		ratio := "inf"
		if s.GoodputRatio > 0 {
			ratio = fmt.Sprintf("%.2fx", s.GoodputRatio)
		}
		fmt.Printf("%-6d %14.1f %14.1f %7s %6d %9d %8v %8v %6d\n",
			s.Seed, s.DefendedGoodput, s.UndefendedGoodput, ratio,
			s.DeadlineSheds, s.Preemptions, s.RestoreBitwise, s.Deterministic, s.LeakedPages)
	}

	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mikbench: marshal: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mikbench: write %s: %v\n", out, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "mikbench: wrote %s\n", out)
	}

	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "mikbench: FAIL — %d overload regression(s):\n", len(regs))
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  - %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mikbench: PASS — defended goodput >= %.0fx undefended across %d seed(s), 0 leaks, bitwise restore\n",
		bench.OverloadGoodputFactor, len(rep.Seeds))
}

// runServe measures the serving suite and (if baseline is set) gates
// goodput-under-SLO, decode digests, KV leaks and step-latency SLOs.
func runServe(out, baseline string, quick bool, tolerance float64) {
	cases := bench.ServeSuite(quick)
	fmt.Fprintf(os.Stderr, "mikbench: replaying %d serve cases (quick=%v)\n", len(cases), quick)
	start := time.Now()
	rep, err := bench.RunServeSuite(cases, bench.ServeMeasureOpts{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mikbench: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "mikbench: suite done in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-20s %12s %8s %6s %10s %10s %10s %8s %6s\n",
		"case", "goodput_tps", "slo_ok", "done", "p99step_ms", "p99ttft_ms", "reused_tok", "cow", "leaks")
	for _, c := range rep.Cases {
		fmt.Printf("%-20s %12.1f %7.0f%% %6d %10.3f %10.1f %10d %8d %6d\n",
			c.Name, c.GoodputTPS, c.SLOGoodFrac*100, c.Completed,
			c.P99StepMs, c.P99TTFTMs, c.ReusedTokens, c.COWCopies, c.LeakedPages)
	}

	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mikbench: marshal: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mikbench: write %s: %v\n", out, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "mikbench: wrote %s\n", out)
	}

	if baseline == "" {
		return
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mikbench: read baseline: %v\n", err)
		os.Exit(2)
	}
	var base bench.ServeBenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "mikbench: parse baseline %s: %v\n", baseline, err)
		os.Exit(2)
	}
	regs, notes := bench.CompareServe(&base, rep, bench.ServeCompareOpts{GoodputTolerance: tolerance})
	for _, n := range notes {
		fmt.Fprintf(os.Stderr, "mikbench: note: %s\n", n)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "mikbench: FAIL — %d regression(s) vs %s:\n", len(regs), baseline)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  - %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mikbench: PASS — within tolerances of %s (%d cases)\n", baseline, len(base.Cases))
}
