// Command mikbench measures the online planner over a pinned suite of
// BERT-style dynamic-sequence-length and Llama-decode GEMM shapes and gates
// the result against a committed baseline. It is the CI perf job's engine and
// the local tool for refreshing BENCH_planner.json.
//
// Run the suite and write a fresh baseline:
//
//	go run ./cmd/mikbench -out BENCH_planner.json
//
// Gate a working tree against the committed baseline (CI does this):
//
//	go run ./cmd/mikbench -baseline BENCH_planner.json -out bench-current.json
//
// Exit status: 0 = suite ran and (if -baseline) the gate passed; 1 = the gate
// found regressions; 2 = the suite itself failed to run.
//
// Latency is compared with -tolerance (default +15%); allocation counts may
// never increase; chosen programs, candidate counts and cycle costs must be
// bitwise identical to the baseline — those fields are machine-independent,
// so any drift means the planner's decisions changed, not that the runner was
// noisy. -slowdown N plans every shape N times per measured op, which exists
// to prove the gate trips (a -slowdown 2 run must fail a clean baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mikpoly/internal/bench"
)

func main() {
	var (
		out       = flag.String("out", "", "write the measured report to this file (JSON, schema "+bench.PlannerBenchSchema+")")
		baseline  = flag.String("baseline", "", "compare against this baseline report and exit 1 on regression")
		quick     = flag.Bool("quick", false, "run the subsampled suite (tests and smoke runs)")
		minTime   = flag.Duration("mintime", 150*time.Millisecond, "minimum sampling window per repetition")
		repeats   = flag.Int("repeats", 3, "sampling repetitions per case (minimum ns/op is reported)")
		tolerance = flag.Float64("tolerance", 0.15, "allowed fractional ns/op growth vs baseline")
		slowdown  = flag.Int("slowdown", 1, "plan each shape this many times per op (gate-trip injection; >1 must fail a clean baseline)")
	)
	flag.Parse()

	opts := bench.PlannerMeasureOpts{MinTime: *minTime, Repeats: *repeats, Slowdown: *slowdown}
	cases := bench.PlannerSuite(*quick)
	fmt.Fprintf(os.Stderr, "mikbench: measuring %d planner cases (mintime=%v repeats=%d slowdown=%d)\n",
		len(cases), *minTime, *repeats, *slowdown)
	start := time.Now()
	rep, err := bench.RunPlannerSuite(cases, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mikbench: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "mikbench: suite done in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-24s %12s %10s %10s %8s  %s\n", "case", "ns/op", "allocs/op", "bytes/op", "cands", "pattern")
	for _, c := range rep.Cases {
		fmt.Printf("%-24s %12.0f %10d %10d %8d  %s\n",
			c.Name, c.NsPerOp, c.AllocsPerOp, c.BytesPerOp, c.Candidates, c.Pattern)
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mikbench: marshal: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mikbench: write %s: %v\n", *out, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "mikbench: wrote %s\n", *out)
	}

	if *baseline == "" {
		return
	}
	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mikbench: read baseline: %v\n", err)
		os.Exit(2)
	}
	var base bench.PlannerBenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "mikbench: parse baseline %s: %v\n", *baseline, err)
		os.Exit(2)
	}
	regs, notes := bench.ComparePlanner(&base, rep, bench.PlannerCompareOpts{LatencyTolerance: *tolerance})
	for _, n := range notes {
		fmt.Fprintf(os.Stderr, "mikbench: note: %s\n", n)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "mikbench: FAIL — %d regression(s) vs %s:\n", len(regs), *baseline)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  - %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mikbench: PASS — within tolerances of %s (%d cases, latency tolerance %.0f%%)\n",
		*baseline, len(base.Cases), *tolerance*100)
}
