// Command mikgen runs MikPoly's offline stage (S1) and saves the resulting
// micro-kernel library as a JSON artifact, the analog of the paper's
// once-per-platform auto-tuning run whose binaries "do not require
// re-generation for the same operator on the same platform" (§4).
//
// Usage:
//
//	mikgen -hw a100|a100-cuda|ascend910 [-ngen 32 -nsyn 12 -nmik 40 -npred 5120] -o lib.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mikpoly/internal/hw"
	"mikpoly/internal/tune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mikgen: ")
	var (
		hwName = flag.String("hw", "a100", "target hardware: a100, a100-cuda, ascend910")
		ngen   = flag.Int("ngen", 32, "tile-size grid bound n_gen")
		nsyn   = flag.Int("nsyn", 12, "synthetic workload size bound n_syn")
		nmik   = flag.Int("nmik", 40, "retained kernel count n_mik")
		npred  = flag.Int("npred", 5120, "performance-model fit bound n_pred")
		out    = flag.String("o", "mikpoly-lib.json", "output artifact path")
	)
	flag.Parse()

	var h hw.Hardware
	switch *hwName {
	case "a100":
		h = hw.A100()
	case "a100-cuda":
		h = hw.A100CUDACores()
	case "ascend910":
		h = hw.Ascend910()
	default:
		log.Fatalf("unknown hardware %q (want a100, a100-cuda or ascend910)", *hwName)
	}

	opt := tune.Options{NGen: *ngen, NSyn: *nsyn, NMik: *nmik, NPred: *npred}
	start := time.Now()
	lib, err := tune.Generate(h, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d micro-kernels for %s in %v\n",
		len(lib.Kernels), h.Name, time.Since(start).Round(time.Millisecond))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := lib.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved offline artifact to %s\n", *out)
}
