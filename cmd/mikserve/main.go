// Command mikserve runs the MikPoly compilation service: an HTTP server that
// polymerizes micro-kernel programs for the GEMM shapes clients POST to it.
//
//	mikserve -addr :8097
//	curl -s localhost:8097/plan -d '{"m":4096,"n":1024,"k":4096}'
//	curl -s localhost:8097/execute -d '{"m":128,"n":96,"k":64}'
//	curl -s localhost:8097/healthz
//	curl -s localhost:8097/stats
//
// The serving layer (internal/serve) provides admission control, request
// timeouts and size limits, panic recovery, planner deadlines with graceful
// degradation to an always-legal fallback program, and — when fault injection
// is enabled — re-planning with exponential backoff.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/serve"
	"mikpoly/internal/sim"
	"mikpoly/internal/tune"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8097", "listen address")
		hwName      = flag.String("hw", "a100", "hardware model: a100, a100cuda, ascend910")
		cacheCap    = flag.Int("cache", core.DefaultCacheCapacity, "program cache capacity (LRU entries)")
		inFlight    = flag.Int("inflight", 0, "max in-flight requests (0 = default)")
		planTimeout = flag.Duration("plan-timeout", 0, "planner deadline; exceeded plans degrade to the fallback program (0 = default, negative = always degrade)")
		reqTimeout  = flag.Duration("timeout", 0, "per-request timeout (0 = default)")
		faultRate   = flag.Float64("fault-rate", 0, "injected transient task-fault probability [0,1]")
		faultSeed   = flag.Uint64("fault-seed", 1, "fault injection seed")
		dropPEs     = flag.Int("drop-pes", 0, "number of simulated dead PEs")
	)
	flag.Parse()

	var h hw.Hardware
	switch *hwName {
	case "a100":
		h = hw.A100()
	case "a100cuda":
		h = hw.A100CUDACores()
	case "ascend910":
		h = hw.Ascend910()
	default:
		fmt.Fprintf(os.Stderr, "unknown hardware %q\n", *hwName)
		os.Exit(2)
	}

	log.Printf("mikserve: generating micro-kernel library for %s ...", h.Name)
	compiler, err := core.NewCompiler(h, tune.DefaultOptions(), core.WithCacheCapacity(*cacheCap))
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mikserve: library ready (%d kernels)", len(compiler.Library().Kernels))

	cfg := serve.Config{
		MaxInFlight:    *inFlight,
		RequestTimeout: *reqTimeout,
		PlanTimeout:    *planTimeout,
	}
	if *faultRate > 0 || *dropPEs > 0 {
		f := &sim.Faults{Seed: *faultSeed, TaskFaultRate: *faultRate}
		for pe := 0; pe < *dropPEs && pe < h.NumPEs; pe++ {
			f.DropPEs = append(f.DropPEs, pe)
		}
		cfg.Faults = f
		log.Printf("mikserve: fault injection enabled (rate=%g, dead PEs=%v, seed=%d)",
			*faultRate, f.DropPEs, *faultSeed)
	}

	hs := &http.Server{
		Addr:         *addr,
		Handler:      serve.New(compiler, cfg).Handler(),
		ReadTimeout:  15 * time.Second,
		WriteTimeout: 30 * time.Second,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			log.Printf("mikserve: shutdown: %v", err)
		}
	}()

	log.Printf("mikserve: serving on http://%s (plan, execute, healthz, stats)", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("mikserve: drained and stopped")
}
