// Command mikserve runs the MikPoly compilation service: an HTTP server that
// polymerizes micro-kernel programs for the GEMM shapes clients POST to it
// and executes whole model graphs through the graph runtime.
//
//	mikserve -addr :8097
//	curl -s localhost:8097/plan -d '{"m":4096,"n":1024,"k":4096}'
//	curl -s localhost:8097/execute -d '{"m":128,"n":96,"k":64}'
//	curl -s localhost:8097/model -d '{"model":"bert-base","seq":384}'
//	curl -s -H 'X-Tenant: acme' localhost:8097/generate -d '{"prompt_len":512,"steps":32}'
//	curl -s localhost:8097/healthz
//	curl -s localhost:8097/stats
//	curl -s localhost:8097/metrics
//	curl -s localhost:8097/trace
//
// The serving layer (internal/serve) provides admission control, request
// timeouts and size limits, panic recovery, planner deadlines with graceful
// degradation to an always-legal fallback program, and — when fault injection
// is enabled — re-planning with exponential backoff. Model graphs run with
// asynchronous plan-ahead (-plan-ahead) and, for llama2-decode, continuous
// batching (-decode-batch). With -sched, POST /generate runs requests through
// the SLO-aware generation scheduler: paged KV cache with prefix reuse,
// chunked prefill interleaved with decode waves, and token-budget admission
// (429 + Retry-After when the in-flight token budget is exhausted).
//
// Overload defenses (all opt-in): -adaptive-admission replaces the static
// token budget with an AIMD limiter driven by step-SLO feedback;
// -shed-deadlines answers 504 for queued requests that can no longer meet
// their deadline (-deadline-ms or per-request deadline_ms); -kv-preempt
// parks the least-important running sequence under KV-arena pressure and
// restores it losslessly via prefix-cache recompute; -brownout runs the
// graduated degradation ladder and exports its stage as mik_overload_stage.
//
// The socket binds immediately; the micro-kernel library loads (-library)
// or tunes in the background, and /healthz answers 503 until it is ready.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling handlers, mounted only under -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/fleet"
	"mikpoly/internal/hw"
	"mikpoly/internal/obs"
	"mikpoly/internal/plancache"
	"mikpoly/internal/serve"
	"mikpoly/internal/sim"
	"mikpoly/internal/tune"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8097", "listen address")
		hwName      = flag.String("hw", "a100", "hardware model: a100, a100cuda, ascend910")
		cacheCap    = flag.Int("cache", core.DefaultCacheCapacity, "program cache capacity (LRU entries)")
		inFlight    = flag.Int("inflight", 0, "max in-flight requests (0 = default)")
		planTimeout = flag.Duration("plan-timeout", 0, "planner deadline; exceeded plans degrade to the fallback program (0 = default, negative = always degrade)")
		reqTimeout  = flag.Duration("timeout", 0, "per-request timeout (0 = default)")
		faultRate   = flag.Float64("fault-rate", 0, "injected transient task-fault probability [0,1]")
		faultSeed   = flag.Uint64("fault-seed", 1, "fault injection seed")
		dropPEs     = flag.Int("drop-pes", 0, "number of simulated dead PEs")
		chaosSeed   = flag.Uint64("chaos-seed", 0, "run under a seeded chaos schedule (PE death, sticky faults, brownouts); 0 disables")
		library     = flag.String("library", "", "load the micro-kernel library from this file instead of tuning (falls back to tuning if unreadable)")
		saveLibrary = flag.String("save-library", "", "after tuning, save the micro-kernel library to this file")
		planAhead   = flag.Int("plan-ahead", 2, "graph-runtime plan-ahead depth for /model (<= 0 = sequential inline planning)")
		planWorkers = flag.Int("plan-workers", 0, "online-search candidate-evaluation goroutines per plan (<= 1 = sequential; chosen programs are identical either way)")
		decodeBatch = flag.Bool("decode-batch", true, "continuously batch concurrent llama2-decode /model requests")
		fuse        = flag.Bool("fuse", false, "fuse GEMM→epilogue→GEMM graph chains into single programs when the cost model prefers them (whole-graph polymerization)")
		withTrace   = flag.Bool("trace", true, "record execution spans, served at GET /trace")
		traceCap    = flag.Int("trace-cap", obs.DefaultTraceCapacity, "span ring-buffer capacity for -trace")
		withPprof   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		fleetSpec   = flag.String("fleet", "", `device-fleet spec, JSON or @file: [{"hw":"a100","replicas":2},{"hw":"ascend910","replicas":1}]; enables POST /gemm and fleet-routed /model`)
		fleetChaos  = flag.Uint64("fleet-chaos-seed", 0, "run the fleet under a seeded device-level chaos schedule (crash, hang, brownout, slow replica); 0 disables")
		schedOn     = flag.Bool("sched", false, "enable the SLO-aware generation scheduler and POST /generate (paged KV cache, prefix reuse, chunked prefill)")
		kvPages     = flag.Int("kv-pages", 0, "KV-cache capacity in pages for -sched (0 = default)")
		prefillChk  = flag.Int("prefill-chunk", 0, "largest prefill chunk in tokens for -sched (0 = default)")
		stepSLO     = flag.Float64("slo-ms", 0, "decode-step latency SLO in milliseconds for -sched (0 = default)")
		ttftSLO     = flag.Float64("ttft-slo-ms", 0, "time-to-first-token SLO in milliseconds for -sched (0 = default)")
		schedBudget = flag.Int64("sched-tokens", 0, "in-flight token budget for -sched admission; over-budget requests get 429 + Retry-After (0 = default)")
		tenants     = flag.String("tenants", "", "comma-separated X-Tenant allowlist for /generate (empty = any tenant admitted)")
		adaptiveAdm = flag.Bool("adaptive-admission", false, "AIMD admitted-token limiter for -sched: cut the budget on step-SLO violations, grow it while waves run clean")
		shedDead    = flag.Bool("shed-deadlines", false, "shed queued /generate requests whose wait alone exceeds their deadline (504 instead of late work)")
		deadlineMs  = flag.Float64("deadline-ms", 0, "default per-request deadline budget in milliseconds for -shed-deadlines (0 = the TTFT SLO bound; requests may override via deadline_ms)")
		kvPreempt   = flag.Bool("kv-preempt", false, "preempt the least-important running sequence under KV-arena pressure and restore it via prefix-cache recompute (bitwise-identical output)")
		brownout    = flag.Bool("brownout", false, "graduated load-shedding ladder: disable tracing, shrink prefill chunks, stretch hedging, shed lowest-priority traffic as overload deepens (exported as mik_overload_stage)")
		planSnap    = flag.String("plan-snapshot", "", "persistent plan-cache snapshot file: warm-start the program cache from it at bind and flush back via POST /plancache/save (incompatible snapshots are rejected; the server plans online)")
		snapEvery   = flag.Duration("snapshot-interval", 0, "periodically pre-plan traffic-hot shapes and rewrite -plan-snapshot (0 disables the background flusher)")
	)
	flag.Parse()

	var h hw.Hardware
	switch *hwName {
	case "a100":
		h = hw.A100()
	case "a100cuda":
		h = hw.A100CUDACores()
	case "ascend910":
		h = hw.Ascend910()
	default:
		fmt.Fprintf(os.Stderr, "unknown hardware %q\n", *hwName)
		os.Exit(2)
	}

	o := obs.New(*traceCap)
	o.T().SetEnabled(*withTrace)

	cfg := serve.Config{
		MaxInFlight:      *inFlight,
		RequestTimeout:   *reqTimeout,
		PlanTimeout:      *planTimeout,
		DecodeBatch:      *decodeBatch,
		Fuse:             *fuse,
		PlanSnapshotPath: *planSnap,
		SnapshotInterval: *snapEvery,
		Obs:              o,
	}
	if *planSnap != "" {
		log.Printf("mikserve: plan-cache snapshot at %s (flush interval %v)", *planSnap, *snapEvery)
	}
	if *planAhead <= 0 {
		cfg.PlanAhead = -1 // sequential
	} else {
		cfg.PlanAhead = *planAhead
	}
	// Any scheduler-specific flag implies -sched so `-kv-pages 4096` alone
	// does what it reads like.
	if *schedOn || *kvPages > 0 || *prefillChk > 0 || *stepSLO > 0 || *ttftSLO > 0 || *schedBudget > 0 ||
		*adaptiveAdm || *shedDead || *deadlineMs > 0 || *kvPreempt {
		cfg.SchedDecode = true
		cfg.KVPages = *kvPages
		cfg.PrefillChunk = *prefillChk
		cfg.StepSLOMs = *stepSLO
		cfg.TTFTSLOMs = *ttftSLO
		cfg.SchedInFlightTokens = *schedBudget
		cfg.AdaptiveAdmission = *adaptiveAdm
		cfg.ShedDeadlines = *shedDead || *deadlineMs > 0
		cfg.DeadlineMs = *deadlineMs
		cfg.KVPreempt = *kvPreempt
		log.Printf("mikserve: generation scheduler enabled (POST /generate)")
		if cfg.AdaptiveAdmission || cfg.ShedDeadlines || cfg.KVPreempt {
			log.Printf("mikserve: overload defenses: adaptive=%v shed-deadlines=%v (deadline %gms) kv-preempt=%v",
				cfg.AdaptiveAdmission, cfg.ShedDeadlines, cfg.DeadlineMs, cfg.KVPreempt)
		}
	}
	if *brownout {
		cfg.Brownout = true
		log.Printf("mikserve: brownout ladder enabled (mik_overload_stage)")
	}
	if *tenants != "" {
		for _, t := range strings.Split(*tenants, ",") {
			if t = strings.TrimSpace(t); t != "" {
				cfg.Tenants = append(cfg.Tenants, t)
			}
		}
	}
	switch {
	case *chaosSeed != 0:
		f := sim.ChaosSchedule(*chaosSeed, h)
		cfg.Faults = &f
		log.Printf("mikserve: chaos schedule enabled (seed=%d): PE death %v, sticky %v, brownout %v, task fault rate %g",
			*chaosSeed, f.PEDeathCycle, f.StickyFaults, f.Brownout != nil, f.TaskFaultRate)
	case *faultRate > 0 || *dropPEs > 0:
		f := &sim.Faults{Seed: *faultSeed, TaskFaultRate: *faultRate}
		for pe := 0; pe < *dropPEs && pe < h.NumPEs; pe++ {
			f.DropPEs = append(f.DropPEs, pe)
		}
		cfg.Faults = f
		log.Printf("mikserve: fault injection enabled (rate=%g, dead PEs=%v, seed=%d)",
			*faultRate, f.DropPEs, *faultSeed)
	}

	// Bind the socket and start serving immediately; work endpoints and
	// /healthz answer 503 until the library below is ready.
	srv := serve.New(nil, cfg)
	defer srv.Close()
	handler := srv.Handler()
	if *withPprof {
		// pprof registers on http.DefaultServeMux; mount it next to the
		// service on an outer mux so profiling never rides through the
		// admission/timeout middleware.
		outer := http.NewServeMux()
		outer.Handle("/debug/pprof/", http.DefaultServeMux)
		outer.Handle("/", handler)
		handler = outer
		log.Printf("mikserve: pprof enabled at /debug/pprof/")
	}
	hs := &http.Server{
		Addr:         *addr,
		Handler:      handler,
		ReadTimeout:  15 * time.Second,
		WriteTimeout: 30 * time.Second,
		IdleTimeout:  2 * time.Minute,
	}

	go func() {
		if *fleetSpec != "" {
			if err := bindFleet(srv, o, *fleetSpec, *fleetChaos, *cacheCap, *planWorkers, *planSnap); err != nil {
				log.Fatalf("mikserve: -fleet: %v", err)
			}
			return
		}
		lib := loadOrTune(h, *library, *saveLibrary, *cacheCap)
		srv.SetCompiler(core.NewCompilerFromLibrary(lib,
			core.WithCacheCapacity(*cacheCap), core.WithObs(o),
			core.WithPlannerWorkers(*planWorkers)))
		log.Printf("mikserve: ready (%d kernels for %s)", len(lib.Kernels), lib.HW.Name)
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			log.Printf("mikserve: shutdown: %v", err)
		}
	}()

	log.Printf("mikserve: serving on http://%s (plan, execute, model, healthz, stats, metrics, trace)", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// HTTP connections are drained; now stop the background machinery (the
	// decode-batch loop and, when -fleet is set, the device workers and
	// prober) so the process exits with no work in flight.
	srv.Close()
	log.Print("mikserve: drained and stopped")
}

// bindFleet parses the -fleet spec (raw JSON or @file), builds and starts the
// device fleet, and binds it to the server. The first device class's library
// also backs the single-device endpoints (/plan, /execute), so the server
// goes fully ready in one step.
func bindFleet(srv *serve.Server, o *obs.Obs, spec string, chaosSeed uint64, cacheCap, planWorkers int, snapPath string) error {
	raw := []byte(spec)
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return err
		}
		raw = data
	}
	entries, err := fleet.ParseSpec(raw)
	if err != nil {
		return err
	}
	total := 0
	for _, e := range entries {
		total += e.Replicas
	}
	var devFaults []sim.DeviceFaults
	if chaosSeed != 0 {
		devFaults = sim.FleetChaosSchedule(chaosSeed, total, 64)
		log.Printf("mikserve: fleet chaos schedule enabled (seed=%d over %d devices)", chaosSeed, total)
	}
	base := fleet.DeviceConfig{Obs: o}
	if snapPath != "" {
		// Every device validates the snapshot against its own library hash,
		// so in a mixed fleet only the matching class warm-starts; the rest
		// reject it and plan online.
		if snap, err := plancache.LoadFile(snapPath); err != nil {
			log.Printf("mikserve: -plan-snapshot %s: %v; devices start cold", snapPath, err)
		} else {
			base.PlanSnapshot = snap
		}
	}
	log.Printf("mikserve: tuning libraries for %d fleet devices ...", total)
	devices, err := fleet.BuildDevices(entries, tune.DefaultOptions(), base, devFaults)
	if err != nil {
		return err
	}
	f := fleet.NewDispatcher(devices, fleet.Config{
		ProbeInterval: time.Second,
		Obs:           o,
	})
	f.Start()
	srv.SetFleet(f)
	// The fleet shares one library per class; reuse the first device's for
	// the classic endpoints.
	srv.SetCompiler(core.NewCompilerFromLibrary(devices[0].Library(),
		core.WithCacheCapacity(cacheCap), core.WithObs(o),
		core.WithPlannerWorkers(planWorkers)))
	log.Printf("mikserve: fleet ready (%d devices)", total)
	return nil
}

// loadOrTune produces the micro-kernel library: from libPath when given and
// readable (and targeting the requested hardware), otherwise by tuning,
// optionally persisting the result to savePath.
func loadOrTune(h hw.Hardware, libPath, savePath string, cacheCap int) *tune.Library {
	if libPath != "" {
		if lib, err := loadLibrary(h, libPath); err != nil {
			log.Printf("mikserve: -library %s: %v; tuning instead", libPath, err)
		} else {
			log.Printf("mikserve: loaded library from %s (%d kernels)", libPath, len(lib.Kernels))
			return lib
		}
	}
	log.Printf("mikserve: generating micro-kernel library for %s ...", h.Name)
	lib, err := tune.Generate(h, tune.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if savePath != "" {
		if err := saveLibraryFile(lib, savePath); err != nil {
			log.Printf("mikserve: -save-library %s: %v", savePath, err)
		} else {
			log.Printf("mikserve: saved library to %s", savePath)
		}
	}
	return lib
}

// loadLibrary restores a checksummed library artifact. tune.LoadFile rejects
// truncated or bit-rotted files, so a corrupted artifact falls back to
// retuning in loadOrTune instead of serving from damaged models.
func loadLibrary(h hw.Hardware, path string) (*tune.Library, error) {
	lib, err := tune.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if lib.HW.Name != h.Name {
		return nil, fmt.Errorf("library targets %s, server runs %s", lib.HW.Name, h.Name)
	}
	return lib, nil
}

// saveLibraryFile persists the tuned library crash-safely (temp file, fsync,
// atomic rename) with an integrity trailer.
func saveLibraryFile(lib *tune.Library, path string) error {
	return tune.SaveFile(lib, path)
}
