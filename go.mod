module mikpoly

go 1.22
