package mikpoly_test

// This file exposes every paper table and figure as a testing.B benchmark:
// `go test -bench=. -benchmem` regenerates the full evaluation (quick-mode
// suites; run cmd/mikpoly without -quick for the complete paper-sized
// counts). Custom metrics attach the headline number of each experiment —
// e.g. the mean speedup — so benchmark output doubles as the results table.

import (
	"strconv"
	"testing"

	"mikpoly"
	"mikpoly/internal/bench"
	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/infer"
	"mikpoly/internal/tune"
	"mikpoly/internal/workload"
)

// runExperiment executes one experiment per iteration and reports the value
// of row/col (typically the headline mean speedup) as a custom metric.
func runExperiment(b *testing.B, id string, row, col int, metric string) {
	b.Helper()
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var v float64
	for i := 0; i < b.N; i++ {
		t, err := e.Run(bench.Config{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if row < len(t.Rows) && col < len(t.Rows[row]) {
			if x, err := strconv.ParseFloat(t.Rows[row][col], 64); err == nil {
				v = x
			}
		}
	}
	if metric != "" {
		b.ReportMetric(v, metric)
	}
}

func BenchmarkFig1VendorShapeCliff(b *testing.B) { runExperiment(b, "fig1", 0, 2, "peak-TFLOPS") }
func BenchmarkFig6GEMM(b *testing.B)             { runExperiment(b, "fig6-gemm", 0, 1, "mean-speedup") }
func BenchmarkFig6Conv(b *testing.B)             { runExperiment(b, "fig6-conv", 0, 1, "mean-speedup") }
func BenchmarkFig7GEMM(b *testing.B)             { runExperiment(b, "fig7-gemm", 0, 1, "mean-speedup") }
func BenchmarkFig7Conv(b *testing.B)             { runExperiment(b, "fig7-conv", 0, 1, "mean-speedup") }
func BenchmarkFig8LanguageModels(b *testing.B)   { runExperiment(b, "fig8", 0, 1, "bert-speedup") }
func BenchmarkFig9CNNs(b *testing.B)             { runExperiment(b, "fig9", 0, 1, "alexnet-speedup") }
func BenchmarkFig9CNNsNPU(b *testing.B)          { runExperiment(b, "fig9-npu", 0, 1, "alexnet-speedup") }
func BenchmarkFig10RangeCompilers(b *testing.B)  { runExperiment(b, "fig10", 0, 1, "vs-dietcode") }
func BenchmarkTable5InvalidRuns(b *testing.B)    { runExperiment(b, "table5", 0, 1, "vs-dietcode") }
func BenchmarkTable8LlamaOps(b *testing.B)       { runExperiment(b, "table8", 0, 3, "qkv-speedup") }
func BenchmarkFig11LlamaE2E(b *testing.B)        { runExperiment(b, "fig11", 0, 1, "b1-speedup") }
func BenchmarkFig12aOverhead(b *testing.B)       { runExperiment(b, "fig12a", 5, 5, "overhead-pct") }
func BenchmarkFig12bCostModel(b *testing.B)      { runExperiment(b, "fig12b", 0, 1, "vs-oracle") }
func BenchmarkFig13Hyperparams(b *testing.B)     { runExperiment(b, "fig13", 1, 2, "ngen32-speedup") }
func BenchmarkTable9CaseStudy(b *testing.B)      { runExperiment(b, "table9", 1, 6, "case-speedup") }
func BenchmarkAblationPatterns(b *testing.B)     { runExperiment(b, "ablation-patterns", 2, 1, "full-set") }
func BenchmarkAblationPruning(b *testing.B)      { runExperiment(b, "ablation-pruning", 0, 3, "plan-us") }
func BenchmarkAblationWinograd(b *testing.B) {
	runExperiment(b, "ablation-winograd", 0, 1, "vs-im2col")
}
func BenchmarkAblationFusion(b *testing.B) { runExperiment(b, "ablation-fusion", 0, 3, "fusion-gain") }
func BenchmarkAblationSplitK(b *testing.B) { runExperiment(b, "ablation-splitk", 1, 3, "splitk-gain") }
func BenchmarkAblationEvolve(b *testing.B) {
	runExperiment(b, "ablation-evolve", 1, 1, "evolved-speedup")
}
func BenchmarkExtDetection(b *testing.B) { runExperiment(b, "ext-detection", 0, 1, "det-speedup") }

// Component micro-benchmarks.

func sharedGPUCompiler(b *testing.B) *core.Compiler {
	b.Helper()
	lib, err := core.SharedLibrary(hw.A100(), tune.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return core.NewCompilerFromLibrary(lib)
}

// BenchmarkOnlinePlan measures the online polymerization latency per shape —
// the quantity the paper quotes as ~2 µs (our Go implementation is slower;
// see Fig. 12a's modeled-overhead discussion).
func BenchmarkOnlinePlan(b *testing.B) {
	c := sharedGPUCompiler(b)
	cases := workload.Subsample(workload.Table3Suite(), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := cases[i%len(cases)].Shape
		if _, _, err := c.PlanUncached(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOfflineGeneration measures the full offline stage S1 with the
// paper's hyperparameters (the paper's equivalent took ~6 hours of GPU
// auto-tuning; the simulator substrate makes it ~100 ms).
func BenchmarkOfflineGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tune.Generate(hw.A100(), tune.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateProgram measures the simulator substrate on a mid-size
// polymerized program.
func BenchmarkSimulateProgram(b *testing.B) {
	c := sharedGPUCompiler(b)
	prog, err := c.Plan(mikpoly.GemmShape{M: 4096, N: 1024, K: 4096})
	if err != nil {
		b.Fatal(err)
	}
	h := hw.A100()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Simulate(h)
	}
}

// BenchmarkNumericExecute measures real (CPU) execution of a polymerized
// program, the correctness path.
func BenchmarkNumericExecute(b *testing.B) {
	c := sharedGPUCompiler(b)
	a := mikpoly.RandomMatrix(256, 256, 1)
	bb := mikpoly.RandomMatrix(256, 256, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GEMM(a, bb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncoderForward measures a full numeric transformer-encoder
// forward pass with every GEMM flowing through the compiler (plan cache
// warm after the first iteration).
func BenchmarkEncoderForward(b *testing.B) {
	c := sharedGPUCompiler(b)
	enc := infer.NewRandomEncoder(2, 64, 128, 4, 11)
	x := mikpoly.RandomMatrix(64, 64, 3)
	g := infer.Compiled(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Forward(x, g); err != nil {
			b.Fatal(err)
		}
	}
}
