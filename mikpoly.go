// Package mikpoly is a Go reproduction of "Optimizing Dynamic-Shape Neural
// Networks on Accelerators via On-the-Fly Micro-Kernel Polymerization"
// (ASPLOS 2024): a dynamic-shape tensor compiler that generates a set of
// highly optimized fixed-size micro-kernels offline and, when an operator's
// shape becomes known at runtime, polymerizes them on the fly into an
// optimized tensor program guided by a lightweight cost model.
//
// Because no GPU/NPU is attached, the accelerator is a deterministic
// simulator implementing the paper's own hardware abstraction
// H = (P_multi, M_local, M_global); micro-kernels really execute on the CPU
// (float32) so results are verifiable, and the simulator supplies timing.
//
// Basic usage:
//
//	c, err := mikpoly.NewCompiler(mikpoly.A100(), mikpoly.DefaultOptions())
//	if err != nil { ... }
//	a := mikpoly.RandomMatrix(4096, 4096, 1)
//	b := mikpoly.RandomMatrix(4096, 1024, 2)
//	out, err := c.GEMM(a, b) // plans for (4096, 1024, 4096) and executes
//
// The offline stage (NewCompiler) is the expensive step; planning for a new
// runtime shape afterwards is microsecond-scale and cached per shape.
package mikpoly

import (
	"io"

	"mikpoly/internal/core"
	"mikpoly/internal/engine"
	"mikpoly/internal/hw"
	"mikpoly/internal/kernel"
	"mikpoly/internal/poly"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
	"mikpoly/internal/winograd"
)

// Core compiler types.
type (
	// Compiler is the MikPoly dynamic-shape tensor compiler: offline
	// micro-kernel library + online polymerization planner + per-shape
	// program cache.
	Compiler = core.Compiler

	// Hardware is the multi-level accelerator abstraction
	// H = (P_multi, M_local, M_global) of §3.1.
	Hardware = hw.Hardware

	// Options are the offline-stage hyperparameters (n_gen, n_syn, n_mik,
	// n_pred) of §3.3.
	Options = tune.Options

	// Library is the offline-stage output: fixed-size micro-kernels with
	// fitted performance models.
	Library = tune.Library

	// MicroKernel is one fixed-size micro-kernel.
	MicroKernel = kernel.MicroKernel

	// Program is a polymerized tensor program for one runtime shape.
	Program = poly.Program

	// Region is one loop nest of a program (a rectangular output block
	// computed by a single micro-kernel).
	Region = poly.Region

	// Planner is the online polymerization stage (exposed for cost-model
	// and pattern-set configuration).
	Planner = poly.Planner

	// PlanStats reports online-search statistics.
	PlanStats = poly.PlanStats

	// CostModel selects the candidate-scoring model.
	CostModel = poly.CostModel

	// PatternID names a polymerization pattern (Fig. 5).
	PatternID = poly.PatternID

	// SimResult is a simulated execution outcome (makespan, utilization).
	SimResult = sim.Result
)

// Tensor types.
type (
	// Matrix is a dense row-major float32 matrix.
	Matrix = tensor.Matrix

	// Tensor4 is a dense NCHW float32 tensor.
	Tensor4 = tensor.Tensor4

	// GemmShape is a GEMM problem size (M, N, K).
	GemmShape = tensor.GemmShape

	// ConvShape describes a 2-D convolution problem.
	ConvShape = tensor.ConvShape
)

// Cost-model variants (Fig. 12b ablation).
const (
	// CostFull is the paper's cost model: Σ f_wave × f_pipe (Eq. 2).
	CostFull = poly.CostFull
	// CostWaveOnly scores by wave count alone.
	CostWaveOnly = poly.CostWaveOnly
	// CostPipeOnly scores by pipelined-task cost alone.
	CostPipeOnly = poly.CostPipeOnly
	// CostOracle simulates every candidate (reference only; slow).
	CostOracle = poly.CostOracle
)

// NewCompiler runs the offline micro-kernel generation stage for hardware h
// and returns a ready compiler.
func NewCompiler(h Hardware, opt Options) (*Compiler, error) {
	return core.NewCompiler(h, opt)
}

// NewCompilerFromLibrary wraps an existing offline library.
func NewCompilerFromLibrary(lib *Library) *Compiler {
	return core.NewCompilerFromLibrary(lib)
}

// GenerateLibrary runs only the offline stage (S1), for sharing a library
// across compiler variants.
func GenerateLibrary(h Hardware, opt Options) (*Library, error) {
	return tune.Generate(h, opt)
}

// DefaultOptions returns the paper's empirical hyperparameters
// (n_gen=32, n_syn=12, n_mik=40, n_pred=5120).
func DefaultOptions() Options { return tune.DefaultOptions() }

// A100 models the NVIDIA A100 GPU of Table 1.
func A100() Hardware { return hw.A100() }

// A100CUDACores models the A100 restricted to CUDA cores (§5.2.3).
func A100CUDACores() Hardware { return hw.A100CUDACores() }

// Ascend910 models the Huawei Ascend 910A NPU of Table 1.
func Ascend910() Hardware { return hw.Ascend910() }

// GPUPatterns returns the pattern subset used on GPUs (I–II).
func GPUPatterns() []PatternID { return poly.GPUPatterns() }

// NPUPatterns returns the full pattern set used on NPUs (I–IX).
func NPUPatterns() []PatternID { return poly.NPUPatterns() }

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return tensor.NewMatrix(rows, cols) }

// RandomMatrix fills a matrix with deterministic pseudo-random values.
func RandomMatrix(rows, cols int, seed uint64) *Matrix {
	return tensor.RandomMatrix(rows, cols, seed)
}

// NewTensor4 allocates a zeroed NCHW tensor.
func NewTensor4(n, c, h, w int) *Tensor4 { return tensor.NewTensor4(n, c, h, w) }

// RandomTensor4 fills an NCHW tensor with deterministic pseudo-random values.
func RandomTensor4(n, c, h, w int, seed uint64) *Tensor4 {
	return tensor.RandomTensor4(n, c, h, w, seed)
}

// Gemm is the reference (non-polymerized) GEMM, for validation.
func Gemm(a, b *Matrix) *Matrix { return tensor.Gemm(a, b) }

// ConvRef is the reference direct convolution, for validation.
func ConvRef(in, w *Tensor4, shape ConvShape) *Tensor4 { return tensor.ConvRef(in, w, shape) }

// AllClose reports whether two matrices agree within tolerance.
func AllClose(a, b *Matrix, tol float64) bool { return tensor.AllClose(a, b, tol) }

// SaveLibrary writes an offline-stage artifact as JSON (the compiled
// micro-kernel library plus fitted performance models), so the expensive
// offline stage runs once per platform.
func SaveLibrary(lib *Library, w io.Writer) error { return lib.Save(w) }

// LoadLibrary restores an artifact written by SaveLibrary, validating the
// device description and kernel feasibility.
func LoadLibrary(r io.Reader) (*Library, error) { return tune.Load(r) }

// WinogradConv computes a stride-1 3×3 convolution with the Winograd
// F(2×2, 3×3) fast algorithm (the paper's §7 extension); use
// WinogradApplicable to test eligibility.
func WinogradConv(in, w *Tensor4, shape ConvShape) (*Tensor4, error) {
	return winograd.Conv(in, w, shape)
}

// WinogradApplicable reports whether the Winograd path supports the shape.
func WinogradApplicable(shape ConvShape) bool { return winograd.Applicable(shape) }

// Epilogue is a fused GEMM tail: optional per-column bias plus activation,
// applied during output write-back by Compiler.GEMMFused.
type Epilogue = engine.Epilogue

// Activation selects a fused epilogue nonlinearity.
type Activation = engine.Activation

// Fused epilogue activations.
const (
	ActNone = engine.ActNone
	ActReLU = engine.ActReLU
	ActGELU = engine.ActGELU
)
