package mikpoly_test

import (
	"bytes"
	"fmt"
	"testing"

	"mikpoly"
)

// fastOptions keeps the public-API tests quick while exercising the whole
// pipeline.
func fastOptions() mikpoly.Options {
	return mikpoly.Options{NGen: 6, NSyn: 9, NMik: 10, NPred: 256}
}

func TestPublicAPIRoundTrip(t *testing.T) {
	c, err := mikpoly.NewCompiler(mikpoly.A100(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	a := mikpoly.RandomMatrix(123, 77, 1)
	b := mikpoly.RandomMatrix(77, 200, 2)
	got, err := c.GEMM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !mikpoly.AllClose(got, mikpoly.Gemm(a, b), 1e-3) {
		t.Fatal("public-API GEMM differs from reference")
	}
}

func TestPublicAPIConv(t *testing.T) {
	c, err := mikpoly.NewCompiler(mikpoly.A100(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	cs := mikpoly.ConvShape{Batch: 1, InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	in := mikpoly.RandomTensor4(1, 3, 8, 8, 3)
	w := mikpoly.RandomTensor4(4, 3, 3, 3, 4)
	got, err := c.Conv(in, w, cs)
	if err != nil {
		t.Fatal(err)
	}
	want := mikpoly.ConvRef(in, w, cs)
	for i := range got.Data {
		d := got.Data[i] - want.Data[i]
		if d > 1e-3 || d < -1e-3 {
			t.Fatal("conv result differs from reference")
		}
	}
}

func TestHardwarePresets(t *testing.T) {
	for _, h := range []mikpoly.Hardware{mikpoly.A100(), mikpoly.A100CUDACores(), mikpoly.Ascend910()} {
		if err := h.Validate(); err != nil {
			t.Error(err)
		}
	}
	if got := mikpoly.DefaultOptions(); got.NGen != 32 || got.NMik != 40 {
		t.Fatalf("DefaultOptions = %+v", got)
	}
	if len(mikpoly.GPUPatterns()) != 2 || len(mikpoly.NPUPatterns()) != 9 {
		t.Fatal("pattern sets wrong")
	}
}

func TestPlannerConfiguration(t *testing.T) {
	lib, err := mikpoly.GenerateLibrary(mikpoly.A100(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := mikpoly.NewCompilerFromLibrary(lib)
	c.Planner().Cost = mikpoly.CostWaveOnly
	prog, err := c.Plan(mikpoly.GemmShape{M: 512, N: 512, K: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Example demonstrates the quickstart flow from the package documentation.
func Example() {
	c, err := mikpoly.NewCompiler(mikpoly.A100(), mikpoly.Options{
		NGen: 6, NSyn: 9, NMik: 10, NPred: 256,
	})
	if err != nil {
		panic(err)
	}
	// A shape never seen before becomes known "at runtime".
	shape := mikpoly.GemmShape{M: 333, N: 512, K: 128}
	prog, err := c.Plan(shape)
	if err != nil {
		panic(err)
	}
	fmt.Println("regions:", len(prog.Regions) > 0)
	a := mikpoly.RandomMatrix(shape.M, shape.K, 1)
	b := mikpoly.RandomMatrix(shape.K, shape.N, 2)
	out, err := c.GEMM(a, b)
	if err != nil {
		panic(err)
	}
	fmt.Println("correct:", mikpoly.AllClose(out, mikpoly.Gemm(a, b), 1e-3))
	// Output:
	// regions: true
	// correct: true
}

func TestLibraryPersistencePublicAPI(t *testing.T) {
	lib, err := mikpoly.GenerateLibrary(mikpoly.A100(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mikpoly.SaveLibrary(lib, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := mikpoly.LoadLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c := mikpoly.NewCompilerFromLibrary(loaded)
	a := mikpoly.RandomMatrix(50, 60, 1)
	b := mikpoly.RandomMatrix(60, 70, 2)
	out, err := c.GEMM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !mikpoly.AllClose(out, mikpoly.Gemm(a, b), 1e-3) {
		t.Fatal("compiler from loaded library computes wrong results")
	}
}

func TestWinogradPublicAPI(t *testing.T) {
	cs := mikpoly.ConvShape{Batch: 1, InC: 3, InH: 8, InW: 8, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if !mikpoly.WinogradApplicable(cs) {
		t.Fatal("stride-1 3x3 must be winograd-applicable")
	}
	in := mikpoly.RandomTensor4(1, 3, 8, 8, 1)
	w := mikpoly.RandomTensor4(2, 3, 3, 3, 2)
	got, err := mikpoly.WinogradConv(in, w, cs)
	if err != nil {
		t.Fatal(err)
	}
	want := mikpoly.ConvRef(in, w, cs)
	for i := range got.Data {
		d := got.Data[i] - want.Data[i]
		if d > 1e-3 || d < -1e-3 {
			t.Fatal("winograd result differs from direct conv")
		}
	}
	cs.Stride = 2
	if mikpoly.WinogradApplicable(cs) {
		t.Fatal("stride-2 must not be applicable")
	}
}

func TestGEMMFusedPublicAPI(t *testing.T) {
	c, err := mikpoly.NewCompiler(mikpoly.A100(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	a := mikpoly.RandomMatrix(40, 30, 1)
	b := mikpoly.RandomMatrix(30, 20, 2)
	bias := make([]float32, 20)
	for i := range bias {
		bias[i] = 0.5
	}
	got, err := c.GEMMFused(a, b, mikpoly.Epilogue{Bias: bias, Act: mikpoly.ActReLU})
	if err != nil {
		t.Fatal(err)
	}
	want := mikpoly.Gemm(a, b)
	for i := 0; i < 40; i++ {
		for j := 0; j < 20; j++ {
			ref := want.At(i, j) + 0.5
			if ref < 0 {
				ref = 0
			}
			d := got.At(i, j) - ref
			if d > 1e-3 || d < -1e-3 {
				t.Fatalf("fused result wrong at (%d,%d)", i, j)
			}
		}
	}
}
