// LLM decoding GEMMs — the paper's §5.2.4 scenario. During autoregressive
// generation with in-flight batching, the token dimension of every
// projection GEMM changes from step to step, so the serving stack needs
// optimized programs for a dynamic N at fixed weight slices.
//
// The example runs the four Llama2-13b per-GPU GEMM operators (Table 8,
// 4-way tensor parallelism) across token counts 1..4096 and compares
// MikPoly's per-shape programs against the *padding* approach (§2.1): a
// static-shape program compiled once for the maximum length, with shorter
// inputs zero-padded up to it — the strategy static-shape compilers force on
// dynamic workloads.
//
//	go run ./examples/llm
package main

import (
	"fmt"
	"log"

	"mikpoly"
)

// llamaOps are the Table 8 operators: (M, K) weight slices; N is dynamic.
var llamaOps = []struct {
	name string
	m, k int
}{
	{"qkv_proj", 3840, 5120},
	{"o_proj", 5120, 1280},
	{"ffn_up", 3456, 5120},
	{"ffn_down", 5120, 3456},
}

func main() {
	fmt.Println("== Llama2-13b decode GEMMs (tensor parallel size 4) ==")
	compiler, err := mikpoly.NewCompiler(mikpoly.A100(), mikpoly.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	h := compiler.Hardware()

	const maxTokens = 4096
	fmt.Printf("%9s  %6s  %10s  %12s  %9s\n",
		"layer", "tokens", "dynamic-cy", "padded-cy", "gain")
	for _, op := range llamaOps {
		// The padding approach compiles once for the maximum length...
		padded, err := compiler.Plan(mikpoly.GemmShape{M: op.m, N: maxTokens, K: op.k})
		if err != nil {
			log.Fatal(err)
		}
		paddedCycles := padded.Simulate(h).Cycles
		var sumGain float64
		var count int
		for tokens := 1; tokens <= maxTokens; tokens *= 8 {
			// ...while MikPoly plans the true runtime shape.
			s := mikpoly.GemmShape{M: op.m, N: tokens, K: op.k}
			prog, err := compiler.Plan(s)
			if err != nil {
				log.Fatal(err)
			}
			pc := prog.Simulate(h).Cycles
			gain := paddedCycles / pc
			sumGain += gain
			count++
			fmt.Printf("%9s  %6d  %10.0f  %12.0f  %8.1fx\n",
				op.name, tokens, pc, paddedCycles, gain)
		}
		fmt.Printf("%9s  mean gain over max-length padding %.1fx\n\n",
			op.name, sumGain/float64(count))
	}
	fmt.Println("Decode steps (few tokens in flight) waste almost all padded work;")
	fmt.Println("planning the true shape on the fly removes it entirely.")
}
