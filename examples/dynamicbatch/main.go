// Dynamic batch sizes and image resolutions for CNN inference — the
// paper's second motivating scenario (§2.1). A detection service receives
// images at whatever resolution the camera produced and batches whatever is
// in the queue, so every convolution's implicit-GEMM shape varies at
// runtime.
//
// The example (1) validates a polymerized convolution numerically against
// direct convolution, then (2) sweeps batch and resolution over a VGG-style
// convolution layer and shows how MikPoly adapts the program per shape.
//
//	go run ./examples/dynamicbatch
package main

import (
	"fmt"
	"log"

	"mikpoly"
)

func main() {
	fmt.Println("== CNN inference with dynamic batch and resolution ==")
	compiler, err := mikpoly.NewCompiler(mikpoly.A100(), mikpoly.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	h := compiler.Hardware()

	// Part 1: numeric correctness of the conv path on an awkward shape.
	cs := mikpoly.ConvShape{
		Batch: 3, InC: 13, InH: 19, InW: 19,
		OutC: 21, KH: 3, KW: 3, Stride: 2, Pad: 1,
	}
	in := mikpoly.RandomTensor4(cs.Batch, cs.InC, cs.InH, cs.InW, 7)
	w := mikpoly.RandomTensor4(cs.OutC, cs.InC, cs.KH, cs.KW, 8)
	got, err := compiler.Conv(in, w, cs)
	if err != nil {
		log.Fatal(err)
	}
	want := mikpoly.ConvRef(in, w, cs)
	maxDiff := 0.0
	for i := range got.Data {
		d := float64(got.Data[i] - want.Data[i])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("conv %v: polymerized vs direct max diff %.2g\n\n", cs, maxDiff)

	// Part 2: shape sweep over a VGG conv3 layer (256→256 channels, 3×3).
	fmt.Printf("%6s %6s  %22s  %8s %6s %7s  %s\n",
		"batch", "res", "implicit GEMM", "TFLOPS", "tasks", "regions", "pattern")
	for _, batch := range []int{1, 4, 16} {
		for _, res := range []int{56, 120, 224} {
			layer := mikpoly.ConvShape{
				Batch: batch, InC: 256, InH: res, InW: res,
				OutC: 256, KH: 3, KW: 3, Stride: 1, Pad: 1,
			}
			g := layer.GemmShape()
			prog, err := compiler.Plan(g)
			if err != nil {
				log.Fatal(err)
			}
			r := prog.Simulate(h)
			tput := g.FLOPs() / h.CyclesToSeconds(r.Cycles)
			fmt.Printf("%6d %6d  %22s  %8.1f %6d %7d  %s\n",
				batch, res, g.String(), tput/1e12, r.NumTasks,
				len(prog.Regions), prog.Pattern)
		}
	}
	fmt.Println("\nNote how the selected micro-kernels and pattern change with the runtime shape.")
}
