// BERT serving with dynamic sequence lengths — the paper's motivating
// scenario (§2.1): every request carries a different sentence length, so
// every GEMM in the encoder has a shape known only at runtime.
//
// The example serves a stream of requests with varying lengths, planning
// each distinct shape once (the program cache absorbs repeats), and compares
// the polymerized programs against the best single-kernel programs — the
// structure a fixed library routine would use.
//
//	go run ./examples/bertserving
package main

import (
	"fmt"
	"log"
	"time"

	"mikpoly"
)

// bertLayerShapes returns the GEMM shapes of one BERT-base encoder layer at
// the given sequence length (batch 1): fused QKV, attention output, FFN up,
// FFN down.
func bertLayerShapes(seq int) []mikpoly.GemmShape {
	const hidden, ffn = 768, 3072
	return []mikpoly.GemmShape{
		{M: seq, N: 3 * hidden, K: hidden},
		{M: seq, N: hidden, K: hidden},
		{M: seq, N: ffn, K: hidden},
		{M: seq, N: hidden, K: ffn},
	}
}

func main() {
	fmt.Println("== BERT serving with dynamic sequence lengths ==")
	compiler, err := mikpoly.NewCompiler(mikpoly.A100(), mikpoly.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	h := compiler.Hardware()

	// A stream of "requests": sentence lengths a tokenizer might produce.
	lengths := []int{12, 37, 37, 128, 64, 337, 12, 499, 64, 254, 37, 180}
	const layers = 12

	fmt.Printf("%6s  %14s  %14s  %9s  %s\n",
		"seq", "polymerized", "single-kernel", "gain", "plan")
	var totalPoly, totalSingle float64
	for _, seq := range lengths {
		var polyCycles, singleCycles float64
		start := time.Now()
		for _, s := range bertLayerShapes(seq) {
			prog, err := compiler.Plan(s) // cached across layers & repeats
			if err != nil {
				log.Fatal(err)
			}
			polyCycles += prog.Simulate(h).Cycles * layers

			single, err := compiler.Planner().PlanPatternI(s)
			if err != nil {
				log.Fatal(err)
			}
			singleCycles += single.Simulate(h).Cycles * layers
		}
		planTime := time.Since(start)
		totalPoly += polyCycles
		totalSingle += singleCycles
		fmt.Printf("%6d  %11.0f cy  %11.0f cy  %8.2fx  %v\n",
			seq, polyCycles, singleCycles, singleCycles/polyCycles,
			planTime.Round(time.Microsecond))
	}
	fmt.Printf("\nworkload total: %.2fx over single-kernel programs\n", totalSingle/totalPoly)
	n, stats := compiler.PlanStats()
	fmt.Printf("online stage ran %d times (%d candidate programs, %d anchors pruned) — repeats were cache hits\n",
		n, stats.Candidates, stats.PrunedAnchors)
}
