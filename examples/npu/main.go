// MikPoly on the Ascend NPU target: the statically scheduled platform where
// all nine polymerization patterns are explored (§4) and tasks are placed
// with a max-min allocation instead of a hardware scheduler.
//
// The example builds the NPU library, plans a few dynamic shapes, shows
// which patterns win, and contrasts the NPU pattern budget against the GPU
// subset on the same shapes.
//
//	go run ./examples/npu
package main

import (
	"fmt"
	"log"
	"time"

	"mikpoly"
)

func main() {
	fmt.Println("== MikPoly on the Ascend 910A target ==")
	start := time.Now()
	compiler, err := mikpoly.NewCompiler(mikpoly.Ascend910(), mikpoly.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	h := compiler.Hardware()
	fmt.Printf("offline stage: %d micro-kernels for %s (%d DaVinci cores) in %v\n",
		len(compiler.Library().Kernels), h.Name, h.NumPEs,
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("pattern budget: %d patterns (GPUs use %d, §4)\n\n",
		len(mikpoly.NPUPatterns()), len(mikpoly.GPUPatterns()))

	shapes := []mikpoly.GemmShape{
		{M: 4096, N: 1024, K: 4096},
		{M: 777, N: 333, K: 2048},
		{M: 100, N: 5000, K: 512},
		{M: 31, N: 31, K: 9999},
	}
	fmt.Printf("%-20s %-8s %-8s %10s %8s %8s\n",
		"shape", "pattern", "regions", "cycles", "PE-eff", "TFLOPS")
	for _, s := range shapes {
		prog, err := compiler.Plan(s)
		if err != nil {
			log.Fatal(err)
		}
		res := prog.Simulate(h)
		fmt.Printf("%-20s %-8s %-8d %10.0f %7.0f%% %8.1f\n",
			s.String(), prog.Pattern.String(), len(prog.Regions),
			res.Cycles, 100*res.Efficiency(),
			s.FLOPs()/h.CyclesToSeconds(res.Cycles)/1e12)
	}

	// Correctness is platform-independent: execute one ragged shape.
	s := mikpoly.GemmShape{M: 123, N: 457, K: 89}
	a := mikpoly.RandomMatrix(s.M, s.K, 1)
	b := mikpoly.RandomMatrix(s.K, s.N, 2)
	out, err := compiler.GEMM(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnumeric check on %v: matches reference = %v\n",
		s, mikpoly.AllClose(out, mikpoly.Gemm(a, b), 1e-3))
}
