// Quickstart: compile and run a dynamic-shape GEMM with MikPoly.
//
// The program builds the offline micro-kernel library for the simulated
// A100, then receives a "runtime" shape it has never seen, polymerizes a
// program for it on the fly, executes it numerically, validates the result
// against reference GEMM, and reports the simulated performance against the
// vendor-library analog.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mikpoly"
)

func main() {
	fmt.Println("== MikPoly quickstart ==")

	// Offline stage (S1): generate fixed-size micro-kernels and their
	// performance models. This is the expensive, once-per-device step.
	start := time.Now()
	compiler, err := mikpoly.NewCompiler(mikpoly.A100(), mikpoly.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	lib := compiler.Library()
	fmt.Printf("offline stage: %d micro-kernels generated in %v\n",
		len(lib.Kernels), time.Since(start).Round(time.Millisecond))

	// A dynamic shape becomes known only now, at "runtime" — note the
	// deliberately awkward dimensions no library kernel fits exactly.
	shape := mikpoly.GemmShape{M: 1234, N: 777, K: 2500}
	fmt.Printf("\nruntime shape: %v\n", shape)

	// Online stage (S2): polymerize micro-kernels into a program.
	start = time.Now()
	prog, err := compiler.Plan(shape)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned in %v: pattern %s, %d region(s)\n",
		time.Since(start).Round(time.Microsecond), prog.Pattern, len(prog.Regions))
	for i, r := range prog.Regions {
		fmt.Printf("  region %d: rows %d+%d, cols %d+%d, kernel %v\n",
			i, r.M0, r.M, r.N0, r.N, r.Kern)
	}

	// Execute numerically and validate against reference GEMM.
	a := mikpoly.RandomMatrix(shape.M, shape.K, 1)
	b := mikpoly.RandomMatrix(shape.K, shape.N, 2)
	out, err := compiler.GEMM(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnumeric result matches reference: %v\n",
		mikpoly.AllClose(out, mikpoly.Gemm(a, b), 1e-3))

	// Simulated performance on the accelerator substrate.
	h := compiler.Hardware()
	res, err := compiler.Simulate(shape)
	if err != nil {
		log.Fatal(err)
	}
	tput := shape.FLOPs() / h.CyclesToSeconds(res.Cycles)
	fmt.Printf("simulated: %.0f cycles, %.1f TFLOPS (%.0f%% PE efficiency, %d tasks, %d waves)\n",
		res.Cycles, tput/1e12, 100*res.Efficiency(), res.NumTasks, res.Waves())
}
