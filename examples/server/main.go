// A dynamic-shape compilation service: the deployment shape of MikPoly in a
// serving stack. Worker processes POST the GEMM shapes they encounter at
// runtime; the service polymerizes a program for each (caching per shape)
// and returns the selected strategy and its predicted/simulated performance
// as JSON.
//
//	go run ./examples/server            # serves on :8097
//	curl -s localhost:8097/plan -d '{"m":4096,"n":1024,"k":4096}'
//
// The example also exercises itself: it starts the server, issues a few
// requests, prints the responses, and shuts down.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"mikpoly"
)

// planRequest is the wire format of a compilation request.
type planRequest struct {
	M int `json:"m"`
	N int `json:"n"`
	K int `json:"k"`
}

// regionInfo describes one region of the returned program.
type regionInfo struct {
	RowOffset int    `json:"row_offset"`
	Rows      int    `json:"rows"`
	ColOffset int    `json:"col_offset"`
	Cols      int    `json:"cols"`
	Kernel    string `json:"kernel"`
}

// planResponse is the wire format of a compilation result.
type planResponse struct {
	Shape      string       `json:"shape"`
	Pattern    string       `json:"pattern"`
	Regions    []regionInfo `json:"regions"`
	Tasks      int          `json:"tasks"`
	SimCycles  float64      `json:"sim_cycles"`
	SimTFLOPS  float64      `json:"sim_tflops"`
	Efficiency float64      `json:"pe_efficiency"`
}

// server wraps a compiler behind HTTP.
type server struct {
	compiler *mikpoly.Compiler
}

func (s *server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON body like {\"m\":4096,\"n\":1024,\"k\":4096}", http.StatusMethodNotAllowed)
		return
	}
	var req planRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	shape := mikpoly.GemmShape{M: req.M, N: req.N, K: req.K}
	if !shape.Valid() {
		http.Error(w, fmt.Sprintf("invalid shape %v", shape), http.StatusBadRequest)
		return
	}
	prog, err := s.compiler.Plan(shape)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	res := prog.Simulate(s.compiler.Hardware())
	h := s.compiler.Hardware()
	resp := planResponse{
		Shape:      shape.String(),
		Pattern:    prog.Pattern.String(),
		Tasks:      res.NumTasks,
		SimCycles:  res.Cycles,
		SimTFLOPS:  shape.FLOPs() / h.CyclesToSeconds(res.Cycles) / 1e12,
		Efficiency: res.Efficiency(),
	}
	for _, reg := range prog.Regions {
		resp.Regions = append(resp.Regions, regionInfo{
			RowOffset: reg.M0, Rows: reg.M,
			ColOffset: reg.N0, Cols: reg.N,
			Kernel: reg.Kern.String(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("encode: %v", err)
	}
}

func main() {
	fmt.Println("== MikPoly compilation service ==")
	compiler, err := mikpoly.NewCompiler(mikpoly.A100(), mikpoly.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	srv := &server{compiler: compiler}
	mux := http.NewServeMux()
	mux.HandleFunc("/plan", srv.handlePlan)

	ln, err := net.Listen("tcp", "127.0.0.1:8097")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: mux}
	go func() {
		if err := hs.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	fmt.Printf("serving on http://%s/plan\n\n", ln.Addr())

	// Exercise the service as a client would.
	client := &http.Client{Timeout: 10 * time.Second}
	for _, req := range []planRequest{
		{M: 4096, N: 1024, K: 4096},
		{M: 105, N: 1024, K: 12544},
		{M: 37, N: 768, K: 768},
	} {
		body, _ := json.Marshal(req)
		resp, err := client.Post(fmt.Sprintf("http://%s/plan", ln.Addr()),
			"application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var pr planResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("%s -> pattern %s, %d region(s), %.1f TFLOPS, %.0f%% PE efficiency\n",
			pr.Shape, pr.Pattern, len(pr.Regions), pr.SimTFLOPS, 100*pr.Efficiency)
		for _, reg := range pr.Regions {
			fmt.Printf("    rows %d+%d cols %d+%d %s\n",
				reg.RowOffset, reg.Rows, reg.ColOffset, reg.Cols, reg.Kernel)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver drained and stopped")
}
