// A dynamic-shape compilation service: the deployment shape of MikPoly in a
// serving stack. Worker processes POST the GEMM shapes they encounter at
// runtime; the hardened serving layer (internal/serve) polymerizes a program
// for each — caching per shape, degrading gracefully under planner deadlines,
// and retrying with backoff when fault injection reports a bad run.
//
//	go run ./examples/server            # serves on 127.0.0.1:8097
//	curl -s localhost:8097/plan -d '{"m":4096,"n":1024,"k":4096}'
//
// The example also exercises itself: it starts the server, issues plan and
// execute requests (including one against a fault-injected device), prints
// the responses and server stats, and shuts down cleanly.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/serve"
	"mikpoly/internal/sim"
	"mikpoly/internal/tune"
)

// planRequest is the wire format of a compilation request.
type planRequest struct {
	M int `json:"m"`
	N int `json:"n"`
	K int `json:"k"`
}

// planResponse mirrors the fields of serve's /plan answer we print.
type planResponse struct {
	Shape      string `json:"shape"`
	Pattern    string `json:"pattern"`
	Regions    []json.RawMessage
	Degraded   bool    `json:"degraded"`
	SimTFLOPS  float64 `json:"sim_tflops"`
	Efficiency float64 `json:"pe_efficiency"`
}

// execResponse mirrors the fields of serve's /execute answer we print.
type execResponse struct {
	Shape        string  `json:"shape"`
	Degraded     bool    `json:"degraded"`
	Attempts     int     `json:"attempts"`
	FaultedTasks int     `json:"faulted_tasks"`
	Checksum     float64 `json:"checksum"`
}

func post(client *http.Client, url string, req any, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(r.Body).Decode(&e)
		return fmt.Errorf("%s: %s", r.Status, e.Error)
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// startServer builds a hardened server for the compiler and serves it on a
// loopback listener until shutdown.
func startServer(compiler *core.Compiler, cfg serve.Config) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	hs := &http.Server{
		Handler: serve.New(compiler, cfg).Handler(),
		// The serve layer already bounds bodies (http.MaxBytesReader) and
		// per-request work; these bound the connection itself.
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 20 * time.Second,
		IdleTimeout:  time.Minute,
	}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	return hs, ln, nil
}

func main() {
	fmt.Println("== MikPoly compilation service ==")
	compiler, err := core.NewCompiler(hw.A100(), tune.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// A mildly hostile device: 5% of simulated tasks report transient
	// faults, so some /execute calls re-plan with backoff.
	hs, ln, err := startServer(compiler, serve.Config{
		MaxInFlight: 8,
		RetryBase:   2 * time.Millisecond,
		RetryMax:    20 * time.Millisecond,
		Faults:      &sim.Faults{Seed: 11, TaskFaultRate: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}
	base := fmt.Sprintf("http://%s", ln.Addr())
	fmt.Printf("serving on %s/plan\n\n", base)

	client := &http.Client{Timeout: 10 * time.Second}
	for _, req := range []planRequest{
		{M: 4096, N: 1024, K: 4096},
		{M: 105, N: 1024, K: 12544},
		{M: 37, N: 768, K: 768},
	} {
		var pr planResponse
		if err := post(client, base+"/plan", req, &pr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s -> pattern %s, %d region(s), %.1f TFLOPS, %.0f%% PE efficiency\n",
			pr.Shape, pr.Pattern, len(pr.Regions), pr.SimTFLOPS, 100*pr.Efficiency)
	}

	fmt.Println("\nexecuting on the fault-injected device:")
	var er execResponse
	if err := post(client, base+"/execute", planRequest{M: 96, N: 80, K: 64}, &er); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s -> %d attempt(s), %d faulted task(s) in final run, checksum %.1f\n",
		er.Shape, er.Attempts, er.FaultedTasks, er.Checksum)

	// Malformed and oversized requests are rejected, not crashed on.
	for _, bad := range []planRequest{{M: -3, N: 8, K: 8}, {M: 1 << 30, N: 1 << 30, K: 1 << 30}} {
		var pr planResponse
		err := post(client, base+"/plan", bad, &pr)
		fmt.Printf("rejected %v: %v\n", bad, err)
	}

	var stats struct {
		Requests int64 `json:"requests"`
		Degraded int64 `json:"degraded"`
		Retries  int64 `json:"retries"`
		Cache    struct {
			Size int `json:"size"`
			Hits int `json:"hits"`
		} `json:"cache"`
	}
	r, err := client.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	r.Body.Close()
	fmt.Printf("\nstats: %d requests, %d degraded, %d retries, %d cached program(s)\n",
		stats.Requests, stats.Degraded, stats.Retries, stats.Cache.Size)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver drained and stopped")
}
