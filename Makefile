# Verification gate for the MikPoly reproduction. `make verify` is the
# one-command CI check: formatting, static analysis, full build, and the
# complete test suite under the race detector. `make perf` runs the planner
# benchmark suite against the committed baseline (the CI perf gate).

GO ?= go

.PHONY: verify fmtcheck fmt vet build test race fuzz bench perf baseline clean

verify: fmtcheck vet build race

# Formatting drift fails the build: gofmt -l must print nothing.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt required on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing burst against the serving layer's input handling.
fuzz:
	$(GO) test ./internal/serve/ -run '^$$' -fuzz FuzzPlanRequest -fuzztime 10s
	$(GO) test ./internal/serve/ -run '^$$' -fuzz FuzzGemmShape -fuzztime 10s

bench:
	$(GO) test -bench=. -benchmem ./...

# Planner perf gate: measure the pinned shape suite and compare against the
# committed baseline. Fails on >15% latency growth, any alloc increase, or
# any change to the chosen programs / cycle-cost bits.
perf:
	$(GO) run ./cmd/mikbench -baseline BENCH_planner.json -out bench-current.json

# Refresh the committed baseline (run on a quiet machine; commit the result).
baseline:
	$(GO) run ./cmd/mikbench -out BENCH_planner.json

clean:
	$(GO) clean ./...
