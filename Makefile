# Verification gate for the MikPoly reproduction. `make verify` is the
# one-command CI check: static analysis, full build, and the complete test
# suite under the race detector.

GO ?= go

.PHONY: verify vet build test race fuzz bench clean

verify: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing burst against the serving layer's input handling.
fuzz:
	$(GO) test ./internal/serve/ -run '^$$' -fuzz FuzzPlanRequest -fuzztime 10s
	$(GO) test ./internal/serve/ -run '^$$' -fuzz FuzzGemmShape -fuzztime 10s

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
